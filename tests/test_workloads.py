"""Tests for empirical workload CDFs."""

import numpy as np
import pytest

from repro.net import DATAMINING_CDF, ENTERPRISE_CDF, WEBSEARCH_CDF, EmpiricalCDF, workload_by_name
from repro.net.workloads import short_flow_threshold


class TestEmpiricalCDF:
    def test_samples_within_support(self, rng):
        s = WEBSEARCH_CDF.sample(rng, 10_000)
        assert s.min() >= 6_000 * 0.999
        assert s.max() <= 30_000_000 * 1.001

    def test_sample_int_at_least_one(self, rng):
        cdf = EmpiricalCDF([(1, 0.5), (10, 1.0)])
        s = cdf.sample_int(rng, 1000)
        assert s.min() >= 1
        assert s.dtype == np.int64

    def test_quantile_monotone(self):
        qs = [WEBSEARCH_CDF.quantile(q) for q in (0.1, 0.3, 0.5, 0.7, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_quantile_endpoints(self):
        assert WEBSEARCH_CDF.quantile(1.0) == pytest.approx(30_000_000)
        assert WEBSEARCH_CDF.quantile(0.0) == pytest.approx(6_000)

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            WEBSEARCH_CDF.quantile(1.5)
        with pytest.raises(ValueError, match=r"got -0\.01"):
            WEBSEARCH_CDF.quantile(-0.01)

    def test_quantile_rejects_nan(self):
        # NaN slips through plain range comparisons (NaN < 0 is False);
        # the guard must name it explicitly.
        with pytest.raises(ValueError, match="nan"):
            WEBSEARCH_CDF.quantile(float("nan"))

    def test_quantile_accepts_integer_and_numpy_q(self):
        assert WEBSEARCH_CDF.quantile(1) == pytest.approx(30_000_000)
        assert WEBSEARCH_CDF.quantile(np.float64(0.5)) == pytest.approx(
            WEBSEARCH_CDF.quantile(0.5))

    def test_empirical_quantiles_match_declared_points(self, rng):
        # Sampling then measuring must approximately recover the CDF points.
        s = WEBSEARCH_CDF.sample(rng, 200_000)
        frac_below_133k = np.mean(s <= 133_000)
        assert abs(frac_below_133k - 0.60) < 0.02

    def test_datamining_heavier_tail_than_websearch(self, rng):
        # datamining: most flows tiny, p50 far below websearch's p50.
        assert DATAMINING_CDF.quantile(0.5) < WEBSEARCH_CDF.quantile(0.5)
        # ...but its extreme tail is larger.
        assert DATAMINING_CDF.quantile(0.999) > WEBSEARCH_CDF.quantile(0.999)

    def test_mean_positive_and_finite(self):
        for cdf in (WEBSEARCH_CDF, DATAMINING_CDF, ENTERPRISE_CDF):
            m = cdf.mean(n_mc=50_000)
            assert np.isfinite(m) and m > 0

    def test_validation_rejects_bad_points(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([(10, 1.0)])  # too few
        with pytest.raises(ValueError):
            EmpiricalCDF([(10, 0.5), (5, 1.0)])  # values not sorted
        with pytest.raises(ValueError):
            EmpiricalCDF([(1, 0.5), (2, 0.4)])  # probs decreasing
        with pytest.raises(ValueError):
            EmpiricalCDF([(1, 0.5), (2, 0.9)])  # doesn't end at 1
        with pytest.raises(ValueError):
            EmpiricalCDF([(-1, 0.5), (2, 1.0)])  # non-positive value

    def test_linear_interp_mode(self, rng):
        cdf = EmpiricalCDF([(10, 0.5), (20, 1.0)], log_interp=False)
        s = cdf.sample(rng, 10_000)
        assert 10 <= s.min() and s.max() <= 20
        # Uniform between the points: mean ~ 13.3 ((10+15)/2 halves)
        assert 12.0 < s.mean() < 14.5


class TestRegistry:
    def test_lookup_by_name(self):
        assert workload_by_name("websearch") is WEBSEARCH_CDF
        assert workload_by_name("datamining") is DATAMINING_CDF

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            workload_by_name("nope")

    def test_short_flow_threshold(self):
        assert short_flow_threshold("datamining") == 10_000
        assert short_flow_threshold("websearch") == 100_000
