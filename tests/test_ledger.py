"""Tests for repro.obs.ledger: the cross-run regression record."""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

import repro
from repro import RunOptions, ScenarioConfig, Telemetry
from repro.obs.ledger import (
    MAX_SAMPLES,
    _retained_samples,
    append_entry,
    build_entry,
    diff_entries,
    load_ledger,
    render_diff,
    render_ledger,
    select_entry,
)

CFG = dict(
    policy="adaptive",
    n_paths=4,
    load=0.7,
    duration=8_000.0,
    warmup=1_000.0,
    drain=4_000.0,
    seed=42,
)


@pytest.fixture(scope="module")
def armed_result():
    return repro.run(
        ScenarioConfig(**CFG),
        RunOptions(telemetry=Telemetry(metrics_interval=0.0),
                   forensics=True),
    )


@pytest.fixture()
def entry(armed_result):
    return build_entry(armed_result, label="gate", kernel_pps=1.5e6)


class TestBuildEntry:
    def test_provenance_fields(self, entry):
        assert entry["label"] == "gate"
        assert entry["kind"] == "run"
        assert entry["seed"] == 42
        assert len(entry["config_sha256"]) == 64
        assert entry["code_fingerprint"]
        assert "schema_version" in entry
        assert "recorded_utc" in entry

    def test_measurements(self, entry, armed_result):
        assert entry["kernel_pps"] == 1.5e6
        assert entry["summary"] == armed_result.summary.to_dict()
        assert entry["exact"]["p99"] == armed_result.exact_percentile(99.0)
        assert entry["delivered"] == armed_result.stats["delivered"]

    def test_samples_and_telemetry_joined(self, entry, armed_result):
        assert 0 < len(entry["latency_samples"]) <= MAX_SAMPLES
        assert entry["latency_samples"] == sorted(entry["latency_samples"])
        assert set(entry["stage_breakdown"]) == set(
            repro.obs.LEAF_STAGES)
        hist = entry["cause_histogram"]
        assert sum(hist.values()) == \
            armed_result.forensics_report["analyzed"]
        assert entry["forensics_threshold_us"] > 0

    def test_config_sha_tracks_config(self, armed_result):
        a = build_entry(armed_result, label="a")
        b = build_entry(armed_result, label="b")
        assert a["config_sha256"] == b["config_sha256"]

    def test_bare_run_has_no_telemetry_fields(self):
        bare = repro.run(ScenarioConfig(**CFG))
        e = build_entry(bare, label="bare")
        assert "stage_breakdown" not in e
        assert "cause_histogram" not in e
        assert "latency_samples" in e

    def test_extra_payload(self, armed_result):
        e = build_entry(armed_result, label="x", extra={"note": "hi"})
        assert e["extra"] == {"note": "hi"}


class TestAppendLoadSelect:
    def test_round_trip(self, entry, tmp_path):
        path = tmp_path / "LEDGER.jsonl"
        assert append_entry(entry, path) == 0
        assert append_entry(dict(entry, label="second"), path) == 1
        entries = load_ledger(path)
        assert [e["label"] for e in entries] == ["gate", "second"]
        assert entries[0] == entry

    def test_missing_ledger_is_empty(self, tmp_path):
        assert load_ledger(tmp_path / "nope.jsonl") == []

    def test_future_major_rejected(self, entry, tmp_path):
        path = tmp_path / "LEDGER.jsonl"
        append_entry(dict(entry, schema_version="9.0"), path)
        with pytest.raises(ValueError, match="schema_version"):
            load_ledger(path)

    def test_select_by_index_label_and_errors(self, entry):
        entries = [dict(entry, label="a"), dict(entry, label="b"),
                   dict(entry, label="a", kind="bench")]
        assert select_entry(entries, "0")["label"] == "a"
        assert select_entry(entries, "-1")["kind"] == "bench"
        # Label picks the *latest* entry carrying it.
        assert select_entry(entries, "a")["kind"] == "bench"
        with pytest.raises(ValueError, match="labels"):
            select_entry(entries, "zzz")
        with pytest.raises(ValueError, match="out of range"):
            select_entry(entries, "7")
        with pytest.raises(ValueError, match="empty"):
            select_entry([], "0")


class TestDiff:
    def test_identical_entries_ok(self, entry):
        diff = diff_entries(entry, copy.deepcopy(entry))
        assert diff["ok"] is True
        assert diff["regressions"] == []
        assert diff["comparable"] is True
        for m in diff["metrics"].values():
            assert m["ratio"] == pytest.approx(1.0)
            assert not m["regressed"]
            ci = m["ratio_ci"]
            assert ci["lo"] <= 1.0 <= ci["hi"]
        assert diff["kernel_pps"]["ratio"] == pytest.approx(1.0)

    def test_slower_candidate_regresses(self, entry):
        slow = copy.deepcopy(entry)
        slow["exact"] = {k: v * 1.5 for k, v in slow["exact"].items()}
        slow["summary"] = {
            k: (v * 1.5 if k not in ("count",) else v)
            for k, v in slow["summary"].items()
        }
        slow["latency_samples"] = [v * 1.5
                                   for v in slow["latency_samples"]]
        diff = diff_entries(entry, slow, max_regress=0.2)
        assert diff["ok"] is False
        assert "p99" in diff["regressions"]
        assert diff["metrics"]["p99"]["ratio_ci"]["hi"] < 1.0
        assert diff["metrics"]["p99"]["delta_pct"] == pytest.approx(50.0)

    def test_threshold_is_respected(self, entry):
        mild = copy.deepcopy(entry)
        mild["exact"] = {k: v * 1.1 for k, v in mild["exact"].items()}
        mild["latency_samples"] = [v * 1.1
                                   for v in mild["latency_samples"]]
        diff = diff_entries(entry, mild, max_regress=0.2)
        assert diff["ok"] is True

    def test_point_only_regression_without_samples(self, entry):
        base = copy.deepcopy(entry)
        cand = copy.deepcopy(entry)
        base.pop("latency_samples")
        cand.pop("latency_samples")
        cand["exact"] = {k: v * 2.0 for k, v in cand["exact"].items()}
        diff = diff_entries(base, cand)
        assert diff["ok"] is False
        assert "ratio_ci" not in diff["metrics"]["p99"]

    def test_differing_configs_flagged_incomparable(self, entry):
        other = copy.deepcopy(entry)
        other["config_sha256"] = "0" * 64
        diff = diff_entries(entry, other)
        assert diff["comparable"] is False

    def test_cause_histogram_compared(self, entry):
        diff = diff_entries(entry, copy.deepcopy(entry))
        assert diff["cause_histogram"] is not None
        for row in diff["cause_histogram"].values():
            assert row["base"] == row["candidate"]


class TestRetainedSamples:
    def test_small_sets_kept_verbatim_sorted(self):
        out = _retained_samples(np.asarray([3.0, 1.0, 2.0]), 10)
        assert out == [1.0, 2.0, 3.0]

    def test_downsample_is_deterministic_and_bounded(self):
        values = np.arange(10_000, dtype=np.float64)[::-1]
        a = _retained_samples(values, 100)
        b = _retained_samples(values, 100)
        assert a == b
        assert len(a) == 100
        assert a[0] == 0.0 and a[-1] == 9_999.0

    def test_quantiles_survive_downsampling(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(100.0, size=50_000)
        kept = np.asarray(_retained_samples(values, 2_000))
        for pct in (50.0, 99.0):
            assert np.percentile(kept, pct) == pytest.approx(
                np.percentile(values, pct), rel=0.02)


class TestRendering:
    def test_render_ledger_lists_entries(self, entry):
        text = render_ledger([entry, dict(entry, label="other")])
        assert "run ledger (2 entries)" in text
        assert "gate" in text and "other" in text

    def test_render_diff_states_verdict(self, entry):
        ok = render_diff(diff_entries(entry, copy.deepcopy(entry)))
        assert "verdict: OK" in ok
        slow = copy.deepcopy(entry)
        slow["exact"] = {k: v * 2.0 for k, v in slow["exact"].items()}
        slow["latency_samples"] = [v * 2.0
                                   for v in slow["latency_samples"]]
        bad = render_diff(diff_entries(entry, slow))
        assert "TAIL REGRESSION" in bad and "p99" in bad

    def test_entries_are_json_lines(self, entry, tmp_path):
        path = tmp_path / "LEDGER.jsonl"
        append_entry(entry, path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["label"] == "gate"
