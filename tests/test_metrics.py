"""Tests for streaming statistics, collectors, and reports."""

import math

import numpy as np
import pytest

from repro.metrics import (
    Counter,
    Ewma,
    LatencyRecorder,
    P2Quantile,
    ReservoirSampler,
    Table,
    ThroughputMeter,
    WindowedRate,
    cdf_points,
    format_cdf,
    format_series,
    summarize,
)
from repro.metrics.report import speedup_table


class TestP2Quantile:
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_accuracy_on_exponential(self, q):
        rng = np.random.default_rng(42)
        data = rng.exponential(100.0, 100_000)
        est = P2Quantile(q)
        for x in data:
            est.add(float(x))
        exact = np.quantile(data, q)
        assert abs(est.value - exact) / exact < 0.03

    def test_accuracy_on_uniform(self):
        rng = np.random.default_rng(1)
        data = rng.uniform(0, 1000, 50_000)
        est = P2Quantile(0.95)
        for x in data:
            est.add(float(x))
        assert abs(est.value - 950.0) < 20.0

    def test_small_samples_exact(self):
        est = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            est.add(x)
        assert est.value == 3.0

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.9).value)

    def test_reset(self):
        est = P2Quantile(0.5)
        for x in range(100):
            est.add(float(x))
        est.reset()
        assert est.n == 0 and math.isnan(est.value)

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_estimate_within_observed_range(self):
        rng = np.random.default_rng(3)
        est = P2Quantile(0.99)
        data = rng.lognormal(3, 1, 20_000)
        for x in data:
            est.add(float(x))
        assert data.min() <= est.value <= data.max()


class TestReservoir:
    def test_keeps_everything_under_capacity(self):
        r = ReservoirSampler(capacity=100)
        for x in range(50):
            r.add(float(x))
        assert sorted(r.values()) == [float(x) for x in range(50)]

    def test_bounded_memory(self):
        r = ReservoirSampler(capacity=100)
        for x in range(10_000):
            r.add(float(x))
        assert len(r.values()) == 100
        assert r.count == 10_000

    def test_unbiased_percentiles(self):
        r = ReservoirSampler(capacity=5000, seed=7)
        rng = np.random.default_rng(8)
        data = rng.exponential(10.0, 200_000)
        for x in data:
            r.add(float(x))
        assert abs(r.percentile(50) - np.percentile(data, 50)) < 1.0

    def test_empty_percentile_nan(self):
        assert math.isnan(ReservoirSampler(10).percentile(99))


class TestSummaries:
    def test_summarize_known_values(self):
        s = summarize(np.arange(1, 101, dtype=float))
        assert s.count == 100
        assert s.mean == pytest.approx(50.5)
        assert s.p50 == pytest.approx(50.5)
        assert s.max == 100.0
        assert s.p99 <= s.p999 <= s.max

    def test_summarize_empty(self):
        s = summarize([])
        assert s.count == 0 and math.isnan(s.mean)

    def test_cdf_points_monotone(self):
        rng = np.random.default_rng(5)
        x, q = cdf_points(rng.exponential(5, 1000), n_points=50)
        assert len(x) == 50
        assert np.all(np.diff(x) >= 0) and np.all(np.diff(q) >= 0)

    def test_cdf_points_empty(self):
        x, q = cdf_points([])
        assert len(x) == 0


class TestEwma:
    def test_first_value_is_exact(self):
        e = Ewma(0.1)
        assert math.isnan(e.value)
        e.add(10.0)
        assert e.value == 10.0

    def test_converges_to_constant(self):
        e = Ewma(0.2)
        for _ in range(200):
            e.add(42.0)
        assert e.value == pytest.approx(42.0)

    def test_weights_recent_more(self):
        slow, fast = Ewma(0.01), Ewma(0.5)
        for v in [0.0] * 50 + [100.0] * 5:
            slow.add(v)
            fast.add(v)
        assert fast.value > slow.value

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ewma(0.0)
        with pytest.raises(ValueError):
            Ewma(1.5)


class TestWindowedRate:
    def test_rate_of_steady_stream(self):
        w = WindowedRate(window=1000.0)
        for t in range(1000):
            w.add(float(t), 1.0)
        assert w.rate(999.0) == pytest.approx(1.0, rel=0.15)

    def test_rate_decays_after_silence(self):
        w = WindowedRate(window=100.0)
        for t in range(100):
            w.add(float(t))
        assert w.rate(1000.0) == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedRate(0)


class TestLatencyRecorder:
    def test_streaming_matches_exact(self):
        rec = LatencyRecorder(keep_all=True)
        rng = np.random.default_rng(11)
        for x in rng.exponential(50, 20_000):
            rec.record(float(x))
        exact = rec.exact_percentile(99)
        stream = rec.quantile(0.99)
        assert abs(stream - exact) / exact < 0.05

    def test_warmup_discards_early_samples(self):
        rec = LatencyRecorder(warmup=100.0)
        rec.record(999.0, now=50.0)  # during warmup
        rec.record(1.0, now=150.0)
        assert rec.count == 1
        assert rec.dropped_warmup == 1
        assert rec.mean == 1.0

    def test_mean_max(self):
        rec = LatencyRecorder()
        for v in (1.0, 2.0, 9.0):
            rec.record(v)
        assert rec.mean == pytest.approx(4.0)
        assert rec.max == 9.0

    def test_summary_via_reservoir(self):
        rec = LatencyRecorder(keep_all=False, reservoir=1000)
        for v in range(500):
            rec.record(float(v))
        s = rec.summary()
        assert s.count == 500

    def test_no_storage_raises(self):
        rec = LatencyRecorder(keep_all=False, reservoir=0)
        rec.record(1.0)
        with pytest.raises(ValueError):
            rec.summary()


class TestThroughputMeter:
    def test_goodput_computation(self):
        m = ThroughputMeter()
        # 1000 x 1250B over 1000 µs -> 1250 B/µs = 10 Gbps
        for t in range(1000):
            m.record(1250, float(t))
        assert m.mean_gbps() == pytest.approx(10.0, rel=0.01)
        assert m.mean_pps() == pytest.approx(1e6, rel=0.01)

    def test_empty_meter_nan(self):
        assert math.isnan(ThroughputMeter().mean_gbps())


class TestCounter:
    def test_inc_and_get(self):
        c = Counter()
        c.inc("a")
        c.inc("a", 4)
        assert c.get("a") == 5
        assert c.get("missing") == 0
        assert c.as_dict() == {"a": 5}


class TestReport:
    def test_table_render_aligned(self):
        t = Table(["name", "value"], title="T")
        t.add_row(["x", 1.2345])
        t.add_row(["longer-name", 12345.678])
        out = t.render()
        assert "== T ==" in out
        assert "longer-name" in out
        assert "12,346" in out  # adaptive formatting

    def test_table_row_width_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_format_series(self):
        out = format_series([1, 2], [10.0, 20.0], "load", "p99")
        assert "load" in out and "p99" in out

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1], [1, 2])

    def test_format_cdf(self):
        out = format_cdf(np.arange(100.0), title="lat")
        assert "p99" in out

    def test_format_cdf_empty(self):
        assert "no samples" in format_cdf([])

    def test_speedup_table(self):
        rendered, factors = speedup_table(
            {"single": 100.0, "mpdp": 25.0}, "mpdp", metric="p99"
        )
        assert factors["single"] == pytest.approx(4.0)
        assert "4.00x" in rendered

    def test_speedup_table_missing_candidate(self):
        with pytest.raises(KeyError):
            speedup_table({"a": 1.0}, "b")
