"""Tests for the element framework and the NF library."""

import numpy as np
import pytest

from repro.elements import (
    AclFirewall,
    AclRule,
    Chain,
    Classifier,
    CountMinSketch,
    Delay,
    Dpi,
    Element,
    FlowMonitor,
    LoadBalancer,
    Nat,
    RateLimiter,
    STANDARD_CHAINS,
    VxlanDecap,
    VxlanEncap,
    standard_chain,
)
from repro.elements.nf import VXLAN_OVERHEAD
from repro.net.packet import FiveTuple


class TestElementBase:
    def test_cost_model(self, mk_packet):
        el = Element("e", base_cost=0.5, per_byte=0.001)
        p = mk_packet(size=1000)
        assert el.cost_of(p) == pytest.approx(1.5)

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            Element("e", jitter_sigma=0.5)

    def test_jitter_varies_cost(self, mk_packet, rng):
        el = Element("e", base_cost=1.0, jitter_sigma=0.5, rng=rng)
        costs = {el.cost_of(mk_packet()) for _ in range(50)}
        assert len(costs) > 40

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Element("e", base_cost=-1.0)

    def test_process_counts(self, mk_packet):
        el = Element("e")
        el.process(mk_packet(), 0.0)
        assert el.processed == 1

    def test_drop_marks_packet(self, mk_packet):
        el = Element("e")
        p = mk_packet()
        el.drop(p, "why")
        assert p.dropped == "e:why"
        assert el.drops == 1

    def test_clone_is_independent(self, mk_packet):
        el = Element("e", base_cost=0.3)
        cp = el.clone("@1")
        cp.process(mk_packet(), 0.0)
        assert el.processed == 0 and cp.processed == 1
        assert cp.name == "e@1"
        assert cp.base_cost == 0.3


class TestChain:
    def test_runs_all_elements(self, mk_packet):
        ch = Chain([Delay("d1", base_cost=0.1), Delay("d2", base_cost=0.2)])
        cost = ch.process(mk_packet(), 0.0)
        assert cost == pytest.approx(0.3)
        assert ch.processed == 1 and ch.dropped == 0

    def test_stops_at_drop_but_charges_cost(self, mk_packet):
        fw = AclFirewall(rules=[AclRule(action="deny")])
        after = Delay("after")
        ch = Chain([fw, after])
        p = mk_packet()
        cost = ch.process(p, 0.0)
        assert p.dropped is not None
        assert cost > 0
        assert after.processed == 0
        assert ch.dropped == 1

    def test_mean_cost(self):
        ch = Chain([Delay("a", base_cost=0.5), Delay("b", base_cost=0.5)])
        assert ch.mean_cost() == pytest.approx(1.0)

    def test_clone_clones_members(self, mk_packet):
        ch = Chain([Nat()])
        cp = ch.clone("@0")
        cp.process(mk_packet(), 0.0)
        assert ch.elements[0].processed == 0
        assert cp.elements[0].processed == 1

    def test_stateful_flag(self):
        assert Chain([Delay("d")]).stateful is False
        assert Chain([Delay("d"), Nat()]).stateful is True


class TestClassifier:
    def test_first_match_labels(self, factory):
        cl = Classifier(rules=[
            (AclRule(dport=53), "dns"),
            (AclRule(dport=80), "web"),
        ])
        p_web = factory.make(FiveTuple(1, 2, 999, 80), 100, 0.0)
        p_other = factory.make(FiveTuple(1, 2, 999, 22), 100, 0.0)
        cl.process(p_web, 0.0)
        cl.process(p_other, 0.0)
        assert p_web.meta == "web"
        assert p_other.meta == "best-effort"

    def test_per_rule_cost_scales(self, factory):
        rules = [(AclRule(dport=10_000 + i), f"c{i}") for i in range(50)]
        cl = Classifier(rules=rules, per_rule=0.01)
        p = factory.make(FiveTuple(1, 2, 999, 1), 100, 0.0)  # matches nothing
        cost = cl.process(p, 0.0)
        assert cost >= 0.15 + 50 * 0.01


class TestFirewall:
    def test_deny_rule_drops(self, factory):
        fw = AclFirewall(rules=[AclRule(dport=22, action="deny")])
        ssh = factory.make(FiveTuple(1, 2, 999, 22), 100, 0.0)
        web = factory.make(FiveTuple(1, 2, 999, 80), 100, 0.0)
        fw.process(ssh, 0.0)
        fw.process(web, 0.0)
        assert ssh.dropped and not web.dropped
        assert fw.drops == 1

    def test_first_match_wins(self, factory):
        fw = AclFirewall(rules=[
            AclRule(dport=22, action="allow"),
            AclRule(action="deny"),  # catch-all
        ])
        ssh = factory.make(FiveTuple(1, 2, 999, 22), 100, 0.0)
        fw.process(ssh, 0.0)
        assert not ssh.dropped

    def test_default_deny_mode(self, factory):
        fw = AclFirewall(rules=[], default_action="deny")
        p = factory.make(FiveTuple(1, 2, 3, 4), 100, 0.0)
        fw.process(p, 0.0)
        assert p.dropped

    def test_wildcard_matching(self):
        r = AclRule(src=5)
        assert r.matches(FiveTuple(5, 9, 1, 2))
        assert not r.matches(FiveTuple(6, 9, 1, 2))


class TestNat:
    def test_rewrites_and_remembers(self, factory):
        nat = Nat(public_ip=777, port_base=30_000)
        ft = FiveTuple(1, 2, 999, 80)
        p1 = factory.make(ft, 100, 0.0)
        p2 = factory.make(ft, 100, 1.0)
        nat.process(p1, 0.0)
        nat.process(p2, 1.0)
        assert p1.ftuple.src == 777 and p1.ftuple.sport == 30_000
        assert p1.ftuple == p2.ftuple  # same mapping reused
        assert nat.misses == 1

    def test_distinct_flows_distinct_ports(self, factory):
        nat = Nat()
        p1 = factory.make(FiveTuple(1, 2, 100, 80), 100, 0.0)
        p2 = factory.make(FiveTuple(1, 2, 101, 80), 100, 0.0)
        nat.process(p1, 0.0)
        nat.process(p2, 0.0)
        assert p1.ftuple.sport != p2.ftuple.sport

    def test_miss_costs_more(self, factory):
        nat = Nat(base_cost=0.1, miss_cost=2.0)
        ft = FiveTuple(1, 2, 999, 80)
        c_miss = nat.process(factory.make(ft, 100, 0.0), 0.0)
        c_hit = nat.process(factory.make(ft, 100, 0.0), 0.0)
        assert c_miss > c_hit

    def test_table_full_drops(self, factory):
        nat = Nat(max_entries=1)
        nat.process(factory.make(FiveTuple(1, 2, 1, 80), 100, 0.0), 0.0)
        p = factory.make(FiveTuple(1, 2, 2, 80), 100, 0.0)
        nat.process(p, 0.0)
        assert p.dropped == "nat:nat-table-full"

    def test_clone_has_empty_table(self, factory):
        nat = Nat()
        nat.process(factory.make(FiveTuple(1, 2, 1, 80), 100, 0.0), 0.0)
        cp = nat.clone("@1")
        assert len(cp.table) == 0


class TestRateLimiter:
    def test_within_rate_passes(self, mk_packet):
        rl = RateLimiter(rate_bps=8e6, burst_bytes=10_000)  # 1 B/µs
        p = mk_packet(size=100)
        rl.process(p, 0.0)
        assert not p.dropped

    def test_burst_exhaustion_drops(self, mk_packet):
        rl = RateLimiter(rate_bps=8e6, burst_bytes=150)
        p1, p2 = mk_packet(size=100), mk_packet(size=100)
        rl.process(p1, 0.0)
        rl.process(p2, 0.0)  # only 50 tokens left
        assert not p1.dropped and p2.dropped

    def test_tokens_refill_over_time(self, mk_packet):
        rl = RateLimiter(rate_bps=8e6, burst_bytes=100)  # 1 B/µs refill
        rl.process(mk_packet(size=100), 0.0)
        late = mk_packet(size=100)
        rl.process(late, 200.0)  # 200 µs -> >=100 tokens back
        assert not late.dropped

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RateLimiter(rate_bps=0)


class TestFlowMonitor:
    def test_estimates_bytes_per_flow(self, factory):
        mon = FlowMonitor()
        ft = FiveTuple(1, 2, 999, 80)
        for _ in range(10):
            mon.process(factory.make(ft, 150, 0.0), 0.0)
        assert mon.estimate_bytes(ft) >= 1500  # CMS never undercounts

    def test_unseen_flow_estimate_small(self, factory):
        mon = FlowMonitor()
        for i in range(100):
            mon.process(factory.make(FiveTuple(1, 2, i, 80), 100, 0.0), 0.0)
        # An unseen flow should estimate (almost) zero with a 2048-wide sketch.
        assert mon.estimate_bytes(FiveTuple(9, 9, 9, 9)) < 500


class TestLoadBalancer:
    def test_connection_affinity(self, factory):
        lb = LoadBalancer(backends=[11, 22, 33])
        ft = FiveTuple(1, 2, 999, 80)
        p1, p2 = factory.make(ft, 100, 0.0), factory.make(ft, 100, 1.0)
        lb.process(p1, 0.0)
        lb.process(p2, 1.0)
        assert p1.ftuple.dst == p2.ftuple.dst
        assert p1.ftuple.dst in (11, 22, 33)

    def test_spreads_across_backends(self, factory):
        lb = LoadBalancer(backends=[11, 22, 33, 44])
        for i in range(200):
            lb.process(factory.make(FiveTuple(1, 2, i, 80), 100, 0.0), 0.0)
        used = {b for b, n in lb.per_backend.items() if n > 0}
        assert len(used) >= 3

    def test_needs_backends(self):
        with pytest.raises(ValueError):
            LoadBalancer(backends=[])


class TestDpi:
    def test_cost_scales_with_size(self, mk_packet, rng):
        dpi = Dpi(rng=rng, deep_scan_prob=0.0)
        small = dpi.process(mk_packet(size=64), 0.0)
        big = dpi.process(mk_packet(size=1500), 0.0)
        assert big > small

    def test_deep_scans_happen_at_rate(self, mk_packet, rng):
        dpi = Dpi(rng=rng, deep_scan_prob=0.5)
        for _ in range(1000):
            dpi.process(mk_packet(), 0.0)
        assert 350 < dpi.deep_scans < 650

    def test_requires_rng_for_deep_scan(self):
        with pytest.raises(ValueError):
            Dpi(rng=None, deep_scan_prob=0.1)


class TestVxlan:
    def test_encap_decap_roundtrip(self, mk_packet):
        p = mk_packet(size=1000)
        VxlanEncap().process(p, 0.0)
        assert p.size == 1000 + VXLAN_OVERHEAD
        VxlanDecap().process(p, 0.0)
        assert p.size == 1000

    def test_decap_runt_drops(self, mk_packet):
        p = mk_packet(size=VXLAN_OVERHEAD)
        VxlanDecap().process(p, 0.0)
        assert p.dropped


class TestStandardChains:
    @pytest.mark.parametrize("name", sorted(STANDARD_CHAINS))
    def test_builds_and_processes(self, name, mk_packet, rng):
        ch = standard_chain(name, rng)
        p = mk_packet(size=1000)
        cost = ch.process(p, 0.0)
        assert cost > 0

    def test_unknown_chain(self):
        with pytest.raises(KeyError):
            standard_chain("bogus")

    def test_heavy_requires_rng(self):
        with pytest.raises(ValueError):
            standard_chain("heavy", None)


class TestCountMinSketch:
    def test_never_undercounts(self, rng):
        cms = CountMinSketch(width=256, depth=4)
        true = {}
        keys = [int(k) for k in rng.integers(0, 500, 2000)]
        for k in keys:
            cms.add(k)
            true[k] = true.get(k, 0) + 1
        assert all(cms.estimate(k) >= v for k, v in true.items())

    def test_error_bound_geometry(self):
        cms = CountMinSketch(width=1000, depth=3)
        for i in range(1000):
            cms.add(i)
        eps_n, delta = cms.error_bound()
        assert eps_n == pytest.approx(np.e, rel=0.01)  # e/1000 * 1000
        assert delta == pytest.approx(np.exp(-3))

    def test_heavy_hitters(self):
        cms = CountMinSketch(width=2048, depth=4)
        for _ in range(100):
            cms.add("hot")
        cms.add("cold")
        hits = cms.heavy_hitters(50, ["hot", "cold"])
        assert hits == ["hot"]

    def test_reset(self):
        cms = CountMinSketch()
        cms.add("x", 5)
        cms.reset()
        assert cms.estimate("x") == 0 and cms.total == 0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
