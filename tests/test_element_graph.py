"""Tests for element-graph composition and validation."""

import pytest

from repro.elements import Chain, Delay, ElementGraph, GraphError, chain_from_names


def linear_graph(n=3):
    g = ElementGraph("lin")
    names = [f"e{i}" for i in range(n)]
    for name in names:
        g.add(Delay(name, base_cost=0.1 * (1 + len(name))))
    g.chain(*names)
    return g, names


class TestConstruction:
    def test_add_and_contains(self):
        g = ElementGraph()
        g.add(Delay("a"))
        assert "a" in g and len(g) == 1
        assert g.element("a").name == "a"

    def test_duplicate_name_rejected(self):
        g = ElementGraph()
        g.add(Delay("a"))
        with pytest.raises(GraphError):
            g.add(Delay("a"))

    def test_connect_unknown_rejected(self):
        g = ElementGraph()
        g.add(Delay("a"))
        with pytest.raises(GraphError):
            g.connect("a", "ghost")

    def test_entries_exits(self):
        g, names = linear_graph()
        assert g.entries() == [names[0]]
        assert g.exits() == [names[-1]]


class TestValidation:
    def test_empty_graph_invalid(self):
        with pytest.raises(GraphError, match="empty"):
            ElementGraph().validate()

    def test_cycle_detected(self):
        g, names = linear_graph(3)
        g.connect(names[-1], names[0])
        with pytest.raises(GraphError, match="cycle"):
            g.validate()

    def test_multiple_entries_rejected(self):
        g = ElementGraph()
        g.add(Delay("a"))
        g.add(Delay("b"))
        g.add(Delay("c"))
        g.connect("a", "c")
        g.connect("b", "c")
        with pytest.raises(GraphError, match="entry"):
            g.validate()

    def test_unreachable_rejected(self):
        g = ElementGraph()
        g.add(Delay("a"))
        g.add(Delay("b"))
        g.add(Delay("orphan-src"))
        g.add(Delay("orphan-dst"))
        g.connect("a", "b")
        g.connect("a", "orphan-src")  # now orphan-src reachable
        # Make a second component: orphan-dst unreachable but has in-edge
        g.connect("orphan-src", "orphan-dst")
        g.validate()  # all reachable now -- fine

    def test_valid_linear_passes(self):
        g, _ = linear_graph()
        g.validate()


class TestCompilation:
    def test_compile_linear_chain(self, mk_packet):
        g, names = linear_graph(4)
        ch = g.compile_chain()
        assert isinstance(ch, Chain)
        assert [e.name for e in ch] == names
        assert ch.process(mk_packet(), 0.0) > 0

    def test_branching_graph_not_compilable(self):
        g = ElementGraph()
        for n in ("a", "b", "c"):
            g.add(Delay(n))
        g.connect("a", "b")
        g.connect("a", "c")
        with pytest.raises(GraphError, match="fan"):
            g.compile_chain()

    def test_topological_order_respects_edges(self):
        g = ElementGraph()
        for n in ("x", "y", "z"):
            g.add(Delay(n))
        g.connect("x", "z")
        g.connect("x", "y")
        g.connect("y", "z")
        order = [e.name for e in g.topological_order()]
        assert order.index("x") < order.index("y") < order.index("z")

    def test_chain_from_names(self, mk_packet):
        els = {n: Delay(n) for n in ("a", "b")}
        ch = chain_from_names(["a", "b"], els)
        assert len(ch) == 2


class TestAnalysis:
    def test_parallel_stages_diamond(self):
        g = ElementGraph()
        for n in ("src", "l", "r", "dst"):
            g.add(Delay(n))
        g.connect("src", "l")
        g.connect("src", "r")
        g.connect("l", "dst")
        g.connect("r", "dst")
        stages = g.parallel_stages()
        assert [sorted(e.name for e in s) for s in stages] == [
            ["src"], ["l", "r"], ["dst"]
        ]

    def test_critical_path_diamond(self):
        g = ElementGraph()
        g.add(Delay("src", base_cost=1.0))
        g.add(Delay("cheap", base_cost=0.1))
        g.add(Delay("pricey", base_cost=5.0))
        g.add(Delay("dst", base_cost=1.0))
        g.connect("src", "cheap")
        g.connect("src", "pricey")
        g.connect("cheap", "dst")
        g.connect("pricey", "dst")
        assert g.critical_path_cost() == pytest.approx(7.0)

    def test_linear_critical_path_is_sum(self):
        g = ElementGraph()
        g.add(Delay("a", base_cost=1.0))
        g.add(Delay("b", base_cost=2.0))
        g.chain("a", "b")
        assert g.critical_path_cost() == pytest.approx(3.0)
