"""Tests for repro.cluster: configs, routing, conservation, determinism.

The two load-bearing guarantees pinned here:

* **bit-identity** -- the serialized ``ClusterResult`` is a pure
  function of the config; ``workers=1`` and ``workers=4`` must produce
  byte-identical payloads (shard placement is an execution detail);
* **exact conservation** -- every envelope a host sends is either
  received or accounted as a fabric drop at its destination, even when
  the fabric is lossy and envelopes straddle epoch boundaries.
"""

import json

import pytest

import repro
from repro.bench.scenarios import ScenarioConfig
from repro.cluster import (
    ClusterConfig,
    ClusterResult,
    HostConfig,
    derived_host_seed,
    merge_summaries,
    partition_hosts,
    resolve_workers,
    run_cluster,
)
from repro.net.fabric import FabricConfig, FabricSteering, _mix64


def small_scenario(**kw):
    """A fast host scenario: enough packets for stable accounting."""
    base = dict(policy="adaptive", n_paths=4, load=0.4,
                duration=4_000.0, warmup=500.0, drain=1_500.0)
    base.update(kw)
    return ScenarioConfig(**base)


def small_cluster(n_hosts=3, fabric=None, **kw):
    return ClusterConfig.uniform_hosts(
        n_hosts, small_scenario(), fabric or FabricConfig(), **kw)


def payload(result):
    return json.dumps(result.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# Configs: validate / round-trip / schemas
# ----------------------------------------------------------------------
class TestConfigs:
    def test_fabric_round_trip(self):
        f = FabricConfig(n_spines=8, base_latency=25.0, spine_skew=2.0,
                         jitter_scale=1.0, steering="flowlet",
                         loss_prob=0.01)
        assert FabricConfig.from_dict(f.to_dict()) == f
        assert repro.schemas.infer_kind(f.to_dict()) == "fabric_config"

    def test_fabric_validate_errors(self):
        with pytest.raises(ValueError, match="n_spines"):
            FabricConfig(n_spines=0).validate()
        with pytest.raises(ValueError, match="lookahead"):
            FabricConfig(base_latency=0.0).validate()
        with pytest.raises(ValueError, match="steering"):
            FabricConfig(steering="hash").validate()
        with pytest.raises(ValueError, match="loss_prob"):
            FabricConfig(loss_prob=1.0).validate()

    def test_fabric_unknown_field(self):
        with pytest.raises(ValueError, match="unknown FabricConfig"):
            FabricConfig.from_dict({"n_lanes": 4})

    def test_host_config_round_trip(self):
        h = HostConfig(scenario=small_scenario(), name="h7")
        h2 = HostConfig.from_dict(h.to_dict())
        assert h2.name == "h7"
        assert h2.scenario.to_dict() == h.scenario.to_dict()
        assert repro.schemas.infer_kind(h.to_dict()) == "host_config"

    def test_host_config_rejects_flows_traffic(self):
        h = HostConfig(scenario=small_scenario(traffic="flows"))
        with pytest.raises(ValueError, match="flows"):
            h.validate()

    def test_cluster_round_trip_and_kind(self):
        cc = small_cluster(pattern="incast", incast_target=1, seed=9)
        d = cc.to_dict()
        assert repro.schemas.infer_kind(d) == "cluster_config"
        cc2 = ClusterConfig.from_dict(json.loads(json.dumps(d)))
        assert cc2.to_dict() == d

    def test_cluster_validate_errors(self):
        with pytest.raises(ValueError, match="at least one host"):
            ClusterConfig(hosts=[]).validate()
        with pytest.raises(ValueError, match="hosts\\[1\\]"):
            ClusterConfig(hosts=[
                HostConfig(scenario=small_scenario()),
                HostConfig(scenario=small_scenario(traffic="flows")),
            ]).validate()
        with pytest.raises(ValueError, match="incast_target"):
            small_cluster(pattern="incast", incast_target=5).validate()
        with pytest.raises(ValueError, match="pattern"):
            small_cluster(pattern="ring").validate()

    def test_lookahead_contract_enforced(self):
        # The epoch may never exceed the fabric's minimum wire latency.
        cc = small_cluster(epoch=80.0,
                           fabric=FabricConfig(base_latency=50.0))
        with pytest.raises(ValueError, match="lookahead"):
            cc.validate()
        # At or below the lookahead it is legal.
        small_cluster(epoch=50.0).validate()

    def test_uniform_hosts_copies_template(self):
        template = small_scenario()
        cc = ClusterConfig.uniform_hosts(2, template)
        cc.hosts[0].scenario.load = 0.9
        assert template.load == 0.4
        assert cc.hosts[1].scenario.load == 0.4
        assert [h.name for h in cc.hosts] == ["host0", "host1"]

    def test_derived_host_seed_stable_and_decorrelated(self):
        s = derived_host_seed(42, 0, 42)
        assert s == derived_host_seed(42, 0, 42)  # pure function
        assert s != derived_host_seed(42, 1, 42)  # per-host
        assert s != derived_host_seed(43, 0, 42)  # per-cluster


# ----------------------------------------------------------------------
# Fabric steering
# ----------------------------------------------------------------------
class TestFabricSteering:
    def test_ecmp_is_sticky_and_process_stable(self):
        import numpy as np

        st = FabricSteering(FabricConfig(n_spines=4),
                            rng=np.random.default_rng(0))
        picks = {st.transit(0, 7, t)[0] for t in (0.0, 10.0, 20.0)}
        assert len(picks) == 1  # same flow, same spine
        # splitmix64 is a pure function: stable across processes.
        assert _mix64(3, 11) == _mix64(3, 11)

    def test_delay_never_below_lookahead(self):
        import numpy as np

        cfg = FabricConfig(n_spines=4, base_latency=50.0, spine_skew=5.0,
                           jitter_scale=20.0)
        st = FabricSteering(cfg, rng=np.random.default_rng(1))
        for flow in range(200):
            _, delay, _ = st.transit(0, flow, 0.0)
            assert delay >= cfg.min_latency()


# ----------------------------------------------------------------------
# Sharding plumbing
# ----------------------------------------------------------------------
class TestSharding:
    def test_partition_hosts_balanced_and_contiguous(self):
        assert partition_hosts(4, 2) == [[0, 1], [2, 3]]
        assert partition_hosts(5, 2) == [[0, 1, 2], [3, 4]]
        assert partition_hosts(2, 8) == [[0], [1]]
        assert sum(partition_hosts(7, 3), []) == list(range(7))

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_WORKERS", "2")
        assert resolve_workers(None, 8) == 2
        monkeypatch.delenv("REPRO_CLUSTER_WORKERS")
        assert resolve_workers(3, 8) == 3
        assert resolve_workers(16, 4) == 4  # capped at host count


# ----------------------------------------------------------------------
# Conservation + determinism (the tentpole guarantees)
# ----------------------------------------------------------------------
class TestClusterRun:
    def test_uniform_conservation_exact(self):
        res = run_cluster(small_cluster(3), workers=1, check=True)
        cons = res.cluster["conservation"]
        assert cons["ok"]
        assert cons["envelopes_sent"] == cons["envelopes_received"] > 0
        assert cons["fabric_dropped"] == 0
        # Per-host egress identity: generated == local + sent.
        for h in res.hosts:
            r = h["router"]
            assert r["generated"] == r["local"] + sum(r["sent"].values())

    def test_lossy_fabric_conservation(self):
        # Drops are accounted at the receiver, so the identity stays
        # exact: sent == received + fabric_dropped.
        cc = small_cluster(3, fabric=FabricConfig(loss_prob=0.05))
        res = run_cluster(cc, workers=1, check=True)
        cons = res.cluster["conservation"]
        assert cons["ok"]
        assert cons["fabric_dropped"] > 0
        assert cons["envelopes_sent"] == (cons["envelopes_received"]
                                          + cons["fabric_dropped"])

    def test_workers_1_vs_4_bit_identical(self):
        cc = small_cluster(4)
        r1 = run_cluster(cc, workers=1)
        r4 = run_cluster(cc, workers=4)
        assert r1.workers == 1 and r4.workers == 4
        assert payload(r1) == payload(r4)

    def test_seed_changes_payload(self):
        cc = small_cluster(2)
        base = payload(run_cluster(cc, workers=1))
        cc2 = small_cluster(2, seed=43)
        assert payload(run_cluster(cc2, workers=1)) != base

    def test_incast_routes_to_target(self):
        cc = small_cluster(3, pattern="incast", incast_target=1)
        res = run_cluster(cc, workers=1, check=True)
        target = res.hosts[1]["router"]
        # The target keeps its own traffic local and sends nothing out.
        assert sum(target["sent"].values()) == 0
        assert target["local"] == target["generated"] > 0
        # Every sender directs all its traffic at the target.
        for hid in (0, 2):
            r = res.hosts[hid]["router"]
            assert r["local"] == 0
            assert set(r["sent"]) == {"1"}
        assert sum(int(v) for v in target["received"].values()) > 0

    def test_flowlet_steering_runs_and_conserves(self):
        cc = small_cluster(
            2, fabric=FabricConfig(steering="flowlet", flowlet_gap=30.0,
                                   spine_skew=5.0))
        res = run_cluster(cc, workers=1, check=True)
        assert res.cluster["conservation"]["ok"]
        # Multiple spines actually used somewhere.
        used = set()
        for h in res.hosts:
            used.update(h["router"]["by_spine"])
        assert len(used) > 1

    def test_cluster_result_round_trip(self):
        res = run_cluster(small_cluster(2), workers=1)
        d = json.loads(json.dumps(res.to_dict()))
        assert repro.schemas.infer_kind(d) == "cluster_result"
        res2 = ClusterResult.from_dict(d)
        assert res2.n_hosts == 2
        assert res2.summary.count == res.summary.count
        assert res2.to_dict() == res.to_dict()

    def test_merged_summary_pools_hosts(self):
        res = run_cluster(small_cluster(2), workers=1)
        per_host = [h["summary"]["count"] for h in res.hosts]
        assert res.summary.count == sum(per_host)
        assert res.cluster["delivered"] == sum(h["delivered"]
                                               for h in res.hosts)

    def test_merge_summaries_empty(self):
        s = merge_summaries([], [])
        assert s.count == 0


# ----------------------------------------------------------------------
# repro.run() dispatch + v1 surface
# ----------------------------------------------------------------------
class TestRunDispatch:
    def test_run_accepts_cluster_config(self):
        res = repro.run(small_cluster(2), repro.RunOptions(workers=1))
        assert isinstance(res, repro.ClusterResult)
        assert res.workers == 1

    def test_run_cluster_rejects_faults_slo_options(self):
        with pytest.raises(ValueError, match="host's ScenarioConfig"):
            repro.run(small_cluster(2),
                      repro.RunOptions(slo=repro.SloSpec(
                          objectives=("p99 <= 500us",))))

    def test_run_cluster_rejects_legacy_kwargs(self):
        with pytest.raises(TypeError, match="cluster"):
            repro.run(small_cluster(2), telemetry=repro.Telemetry())

    def test_run_cluster_rejects_telemetry_object(self):
        with pytest.raises(TypeError, match="directory path"):
            repro.run(small_cluster(2),
                      repro.RunOptions(telemetry=repro.Telemetry()))

    def test_run_overrides_apply_to_cluster(self):
        res = repro.run(small_cluster(2), repro.RunOptions(workers=1),
                        seed=99)
        assert res.config.seed == 99

    def test_v1_surface(self):
        for name in ("run", "ScenarioConfig", "ClusterConfig",
                     "HostConfig", "FabricConfig", "RunOptions",
                     "SimulationResult", "ClusterResult", "run_cluster",
                     "run_sweep"):
            assert name in repro.__all__
            assert hasattr(repro, name)
        assert repro.__version__.split(".")[0] == "2"

    def test_cluster_telemetry_bundle(self, tmp_path):
        out = tmp_path / "bundle"
        res = repro.run(small_cluster(2),
                        repro.RunOptions(workers=1, telemetry=str(out)))
        man = json.loads((out / "manifest.json").read_text())
        assert man["kind"] == "cluster_bundle"
        assert len(man["hosts"]) == 2
        for hid in range(2):
            assert (out / f"host{hid}" / "events.jsonl").exists()
        assert res.n_hosts == 2


# ----------------------------------------------------------------------
# Engine hooks on the simulator
# ----------------------------------------------------------------------
class TestExternalEvents:
    def test_external_event_below_floor_raises(self):
        from repro.sim import SimulationError, Simulator

        sim = Simulator()
        sim.run_epoch(100.0)
        with pytest.raises(SimulationError):
            sim.external_event(99.0, lambda: None)
        fired = []
        sim.external_event(100.0, fired.append, 1)
        sim.run_epoch(200.0)
        assert fired == [1]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestClusterCli:
    def test_cluster_run_inline(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "cr.json"
        rc = main(["cluster", "run", "--hosts", "2", "--duration", "12",
                   "--check", "--jobs", "1", "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "cluster" in text and "conservation: ok" in text
        data = json.loads(out.read_text())
        assert repro.schemas.infer_kind(data) == "cluster_result"

    def test_cluster_sweep_inline(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "cs.json"
        rc = main(["cluster", "sweep", "--hosts", "2", "--duration", "12",
                   "--axis", "load=0.3,0.5", "--quiet", "--jobs", "1",
                   "--out", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert repro.schemas.infer_kind(data) == "cluster_sweep"
        assert len(data["cells"]) == 2

    def test_cluster_run_bad_spec_exit_2(self, capsys, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"hosts": [], "fabric": {},
                                   "pattern": "uniform"}))
        assert main(["cluster", "run", "--spec", str(bad)]) == 2
        assert "at least one host" in capsys.readouterr().err

    def test_report_on_cluster_bundle_exit_2(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "bundle"
        repro.run(small_cluster(2),
                  repro.RunOptions(workers=1, telemetry=str(out)))
        assert main(["report", str(out)]) == 2
        err = capsys.readouterr().err
        assert "cluster bundle" in err and "host0" in err
        # Pointing at the per-host bundle works.
        assert main(["report", str(out / "host0")]) == 0

    def test_report_on_empty_dir_exit_2(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["report", str(tmp_path)]) == 2
        assert "not instrumented" in capsys.readouterr().err

    def test_why_on_directory_exit_2(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["why", str(tmp_path)]) == 2
        assert "repro report" in capsys.readouterr().err
