"""Tests for packets, the factory, flows, and the flow tracker."""

import math

import pytest

from repro.net import FiveTuple, Flow, FlowTracker, PacketFactory
from repro.net.packet import HEADER_BYTES, MTU


class TestFiveTuple:
    def test_reversed_swaps_endpoints(self):
        ft = FiveTuple(1, 2, 100, 200, 17)
        rv = ft.reversed()
        assert (rv.src, rv.dst, rv.sport, rv.dport, rv.proto) == (2, 1, 200, 100, 17)

    def test_hashable_and_equal(self):
        assert FiveTuple(1, 2, 3, 4) == FiveTuple(1, 2, 3, 4)
        assert hash(FiveTuple(1, 2, 3, 4)) == hash(FiveTuple(1, 2, 3, 4))


class TestPacket:
    def test_factory_pids_unique_and_increasing(self, factory, ftuple):
        pids = [factory.make(ftuple, 100, 0.0).pid for _ in range(10)]
        assert pids == sorted(set(pids))
        assert factory.created == 10

    def test_latency_from_timestamps(self, mk_packet):
        p = mk_packet(t=10.0)
        p.t_done = 35.0
        assert p.latency == 25.0

    def test_timestamps_start_nan(self, mk_packet):
        p = mk_packet()
        assert math.isnan(p.t_nic) and math.isnan(p.t_enq)
        assert math.isnan(p.t_deq) and math.isnan(p.t_done)

    def test_clone_preserves_identity_fields(self, factory, ftuple):
        p = factory.make(ftuple, 500, 3.0, flow_id=9, seq=4, priority=1)
        p.t_nic = 3.5
        cp = p.clone(factory.next_pid())
        assert cp.pid != p.pid
        assert cp.copy_of == p.pid
        assert cp.is_copy and not p.is_copy
        assert (cp.flow_id, cp.seq, cp.size, cp.priority) == (9, 4, 500, 1)
        assert cp.t_created == 3.0 and cp.t_nic == 3.5

    def test_clone_of_clone_points_to_primary(self, factory, ftuple):
        p = factory.make(ftuple, 100, 0.0)
        c1 = p.clone(factory.next_pid())
        c2 = c1.clone(factory.next_pid())
        assert c2.copy_of == p.pid


class TestFlow:
    def test_packet_count_ceil_division(self, ftuple):
        assert Flow(1, ftuple, 1, 0.0).n_packets == 1
        assert Flow(2, ftuple, MTU, 0.0).n_packets == 1
        assert Flow(3, ftuple, MTU + 1, 0.0).n_packets == 2
        assert Flow(4, ftuple, 10 * MTU, 0.0).n_packets == 10

    def test_packet_sizes_sum_to_flow_size_plus_headers(self, ftuple):
        f = Flow(1, ftuple, 4000, 0.0)
        sizes = f.packet_sizes()
        assert len(sizes) == f.n_packets
        assert sum(sizes) == 4000 + f.n_packets * HEADER_BYTES

    def test_non_positive_size_rejected(self, ftuple):
        with pytest.raises(ValueError):
            Flow(1, ftuple, 0, 0.0)

    def test_fct_nan_until_complete(self, ftuple):
        f = Flow(1, ftuple, 100, 5.0)
        assert math.isnan(f.fct)
        f.t_end = 25.0
        assert f.fct == 20.0


class TestFlowTracker:
    def _mk_flow_packets(self, factory, flow):
        return [
            factory.make(flow.ftuple, s, flow.t_start, flow_id=flow.flow_id, seq=i)
            for i, s in enumerate(flow.packet_sizes())
        ]

    def test_flow_completes_after_all_seqs(self, factory, ftuple):
        tr = FlowTracker()
        f = Flow(1, ftuple, 3 * MTU, 0.0)
        tr.register(f)
        pkts = self._mk_flow_packets(factory, f)
        assert tr.on_delivery(pkts[0], 1.0) is None
        assert tr.on_delivery(pkts[1], 2.0) is None
        done = tr.on_delivery(pkts[2], 3.0)
        assert done is f
        assert f.completed and f.fct == 3.0
        assert tr.incomplete == 0

    def test_duplicate_seq_counted_once(self, factory, ftuple):
        tr = FlowTracker()
        f = Flow(1, ftuple, 2 * MTU, 0.0)
        tr.register(f)
        pkts = self._mk_flow_packets(factory, f)
        tr.on_delivery(pkts[0], 1.0)
        assert tr.on_delivery(pkts[0], 1.5) is None  # duplicate
        assert f.delivered == 1
        assert tr.on_delivery(pkts[1], 2.0) is f

    def test_unknown_flow_ignored(self, factory, ftuple):
        tr = FlowTracker()
        p = factory.make(ftuple, 100, 0.0, flow_id=42, seq=0)
        assert tr.on_delivery(p, 1.0) is None

    def test_double_register_rejected(self, ftuple):
        tr = FlowTracker()
        f = Flow(1, ftuple, 100, 0.0)
        tr.register(f)
        with pytest.raises(ValueError):
            tr.register(f)

    def test_fct_arrays(self, factory, ftuple):
        tr = FlowTracker()
        small = Flow(1, ftuple, 100, 0.0)
        big = Flow(2, ftuple, 10 * MTU, 0.0)
        tr.register(small)
        tr.register(big)
        for f in (small, big):
            for p in self._mk_flow_packets(factory, f):
                tr.on_delivery(p, 7.0)
        assert len(tr.fcts()) == 2
        assert len(tr.fcts_by_size(max_size=1000)) == 1
