"""Micro-scale smoke tests of the experiment registry.

The full experiments run under ``pytest benchmarks/ --benchmark-only``;
these tests only guard the registry against bit-rot: every function is
present, and a fast subset executes end-to-end at a tiny duration scale,
returning renderable text plus a data payload.
"""

import pytest

from repro.bench.figures import (
    ALL_EXPERIMENTS,
    ablation4_intrachain,
    fig1_motivation,
    fig5_path_scaling,
    table3_closed_loop,
)


class TestRegistry:
    def test_all_twenty_two_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
            "F10", "F11",
            "T1", "T2", "T3", "A1", "A2", "A3", "A4",
            "SLO1", "SLO2", "C1", "C2",
        }

    def test_every_entry_is_callable_with_docstring(self):
        for exp_id, fn in ALL_EXPERIMENTS.items():
            assert callable(fn), exp_id
            assert fn.__doc__ and len(fn.__doc__) > 40, exp_id


@pytest.fixture(autouse=True)
def micro_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")


class TestMicroRuns:
    def test_f1_returns_table_and_profiles(self):
        text, data = fig1_motivation()
        assert "F1" in text
        assert "contended core" in data

    def test_f5_returns_series(self):
        text, data = fig5_path_scaling(ks=(1, 2))
        assert data["k"] == [1, 2]
        assert len(data["p99"]) == 2

    def test_a4_returns_all_compositions(self):
        text, data = ablation4_intrachain()
        assert len(data) == 4

    def test_t3_returns_both_policies(self):
        text, data = table3_closed_loop(concurrencies=(4,))
        assert len(data["single"]) == len(data["adaptive"]) == 1
        assert data["single"][0]["rps"] > 0
