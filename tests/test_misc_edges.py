"""Edge-case tests across modules that the focused suites skip."""

import math

import numpy as np
import pytest

from repro import (
    Chain,
    HostLink,
    MpdpConfig,
    MultipathDataPlane,
    PoissonSource,
    RngRegistry,
    Simulator,
)
from repro.dataplane import PathQueue, Poller, VCpu
from repro.dataplane.vcpu import JitterParams
from repro.elements import Delay
from repro.net.packet import PacketFactory, FiveTuple


class TestNestedChains:
    def test_chain_inside_chain_processes(self, mk_packet):
        inner = Chain([Delay("a", base_cost=1.0), Delay("b", base_cost=2.0)],
                      name="inner")
        outer = Chain([Delay("pre", base_cost=0.5), inner], name="outer")
        cost = outer.process(mk_packet(), 0.0)
        assert cost == pytest.approx(3.5)

    def test_nested_mean_cost(self):
        inner = Chain([Delay("a", base_cost=1.0)])
        outer = Chain([Delay("pre", base_cost=0.5), inner])
        assert outer.mean_cost() == pytest.approx(1.5)

    def test_nested_clone(self, mk_packet):
        inner = Chain([Delay("a")])
        outer = Chain([inner], name="o")
        cp = outer.clone("@1")
        cp.process(mk_packet(), 0.0)
        assert inner.processed == 0


class TestVCpuEdges:
    def test_available_at_inside_stall(self):
        rng = np.random.default_rng(0)
        params = JitterParams(mean_run=10.0, stall_median=100.0, stall_sigma=0.01)
        cpu = VCpu(rng=rng, params=params)
        inside = cpu._stall_start + 0.1
        assert cpu.available_at(inside) == cpu._stall_end

    def test_zero_cost_during_idle(self):
        cpu = VCpu()
        s, f = cpu.execute(7.0, 0.0)
        assert s == f == 7.0
        assert cpu.executions == 1

    def test_repr_smoke(self):
        assert "VCpu" in repr(VCpu())


class TestHostLinkEdges:
    def test_busy_until_tracks_backlog(self, sim, mk_packet):
        link = HostLink(sim, lambda p: None, rate_bps=8e9)  # 1000 B/µs
        link.send(mk_packet(size=1000))
        link.send(mk_packet(size=1000))
        assert link.busy_until == pytest.approx(2.0)
        assert link.forwarded == 2
        sim.run()


class TestFactoryAccounting:
    def test_created_counts_replicas(self, ftuple):
        from repro.core.replicator import Replicator

        factory = PacketFactory()
        p = factory.make(ftuple, 100, 0.0)
        Replicator(factory).replicate(p, 3)
        assert factory.created == 4


class TestRecorderModes:
    def test_keep_all_latencies_through_mpdp(self):
        sim = Simulator()
        rngs = RngRegistry(seed=1)
        host = MultipathDataPlane(
            sim, MpdpConfig(n_paths=2, policy="rr", keep_all_latencies=True), rngs
        )
        src = PoissonSource(sim, host.factory, host.input, rngs.stream("t"),
                            rate_pps=100_000, duration=2_000.0)
        src.start()
        sim.run(until=5_000.0)
        host.finalize()
        assert len(host.sink.recorder.samples) == host.sink.delivered

    def test_reservoir_disabled_keep_all(self):
        from repro.metrics import LatencyRecorder

        rec = LatencyRecorder(keep_all=True, reservoir=0)
        rec.record(5.0)
        assert rec.exact_percentile(50) == 5.0


class TestPollerWithSlowWakeup:
    def test_interleaved_idle_periods(self, sim, mk_packet):
        """Arrivals separated by idle gaps each pay the wakeup latency."""
        times = []
        q = PathQueue(sim)
        Poller(sim, q, VCpu(), Chain([Delay("d", base_cost=1.0)]),
               lambda p: times.append(sim.now), batch_overhead=0.0,
               wakeup_latency=3.0)
        sim.call_at(0.0, q.push, mk_packet(seq=0))
        sim.call_at(100.0, q.push, mk_packet(seq=1))
        sim.run()
        assert times == [4.0, 104.0]


class TestSimulatorMisc:
    def test_run_until_event_already_processed(self, sim):
        t = sim.timeout(1.0, value="x")
        sim.run(until=t)
        # Running again against the same processed event returns at once.
        assert sim.run(until=t) == "x"

    def test_run_until_failed_processed_event(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=ev)

    def test_repr_smoke(self, sim):
        assert "Simulator" in repr(sim)


class TestMpdpSinglePathNoClone:
    def test_single_path_uses_chain_directly(self):
        """n_paths=1 must not clone the provided chain (state continuity
        for callers that inspect it afterwards)."""
        sim = Simulator()
        rngs = RngRegistry(seed=2)
        chain = Chain([Delay("d", base_cost=0.5)], name="mine")
        host = MultipathDataPlane(
            sim, MpdpConfig(n_paths=1, policy="single"), rngs, chain=chain
        )
        assert host.paths[0].chain.elements[1] is chain.elements[0]

    def test_multi_path_clones(self):
        sim = Simulator()
        rngs = RngRegistry(seed=2)
        chain = Chain([Delay("d")], name="mine")
        host = MultipathDataPlane(
            sim, MpdpConfig(n_paths=2, policy="rr"), rngs, chain=chain
        )
        for path in host.paths:
            assert path.chain.elements[1] is not chain.elements[0]
