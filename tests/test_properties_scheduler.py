"""Property-based tests for queue disciplines and policy invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.policies import POLICY_NAMES, make_policy
from repro.dataplane.path import DataPath, PathConfig
from repro.dataplane.scheduler import DrrPathQueue, PriorityPathQueue
from repro.elements import Chain, Delay
from repro.net.packet import FiveTuple, PacketFactory
from repro.sim import Simulator

pkt_specs = st.lists(
    st.tuples(st.integers(0, 2), st.integers(64, 1554)),  # (priority, size)
    min_size=1,
    max_size=80,
)


def _push_all(q, specs):
    factory = PacketFactory()
    ft = FiveTuple(1, 2, 3, 4)
    pkts = []
    for i, (prio, size) in enumerate(specs):
        p = factory.make(ft, size, 0.0, flow_id=prio, seq=i, priority=prio)
        if q.push(p):
            pkts.append(p)
    return pkts


class TestPriorityQueueProperties:
    @given(pkt_specs)
    @settings(max_examples=60, deadline=None)
    def test_drains_exactly_what_was_accepted(self, specs):
        sim = Simulator()
        q = PriorityPathQueue(sim, capacity_pkts=64, n_classes=3)
        accepted = _push_all(q, specs)
        # Account evictions: accepted pushes minus later evictions.
        drained = q.pop_batch(10_000)
        assert len(drained) == len(q._classes[0]) + len(drained)  # queue empty
        assert len(drained) == len(accepted) - q.evicted

    @given(pkt_specs)
    @settings(max_examples=60, deadline=None)
    def test_strict_priority_order(self, specs):
        sim = Simulator()
        q = PriorityPathQueue(sim, capacity_pkts=1_000, n_classes=3)
        _push_all(q, specs)
        out = q.pop_batch(10_000)
        # All packets arrived before any pop, so priorities must be
        # non-increasing in service order.
        prios = [p.priority for p in out]
        assert prios == sorted(prios, reverse=True)

    @given(pkt_specs)
    @settings(max_examples=60, deadline=None)
    def test_fifo_within_class(self, specs):
        sim = Simulator()
        q = PriorityPathQueue(sim, capacity_pkts=1_000, n_classes=3)
        _push_all(q, specs)
        out = q.pop_batch(10_000)
        for cls in (0, 1, 2):
            seqs = [p.seq for p in out if p.priority == cls]
            assert seqs == sorted(seqs)


class TestDrrProperties:
    @given(pkt_specs)
    @settings(max_examples=60, deadline=None)
    def test_conservation(self, specs):
        sim = Simulator()
        q = DrrPathQueue(sim, capacity_pkts=1_000, quanta=(1554, 1554, 1554))
        accepted = _push_all(q, specs)
        out = q.pop_batch(10_000)
        assert sorted(p.pid for p in out) == sorted(p.pid for p in accepted)
        assert len(q) == 0 and q.bytes == 0

    @given(st.integers(10, 40), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_long_run_share_proportional_to_quanta(self, n_per_class, weight):
        sim = Simulator()
        q = DrrPathQueue(sim, capacity_pkts=10_000,
                         quanta=(1000, 1000 * weight))
        factory = PacketFactory()
        ft = FiveTuple(1, 2, 3, 4)
        for i in range(n_per_class * 8):
            q.push(factory.make(ft, 1000, 0.0, priority=0, seq=i))
            q.push(factory.make(ft, 1000, 0.0, priority=1, seq=i))
        # Take one "round-trip" worth of service and check shares.
        take = min(4 * (1 + weight), len(q))
        out = [q.pop() for _ in range(take)]
        c1 = sum(1 for p in out if p.priority == 1)
        c0 = take - c1
        assume(c0 > 0)
        assert c1 / c0 <= weight + 1.5  # proportional within slack


class TestPolicyProperties:
    @given(
        st.sampled_from([p for p in POLICY_NAMES]),
        st.integers(1, 8),
        st.lists(st.integers(-1, 1000), min_size=1, max_size=60),
        st.integers(0, 2**31),
    )
    @settings(max_examples=80, deadline=None)
    def test_selection_always_valid(self, name, k, flow_ids, seed):
        """Every policy returns non-empty lists of valid, distinct path
        ids for arbitrary flow structure and any path count."""
        sim = Simulator()
        rng = np.random.default_rng(seed)
        paths = [
            DataPath(sim, i, Chain([Delay("d")]), lambda p: None, rng=rng,
                     config=PathConfig())
            for i in range(k)
        ]
        policy = make_policy(name, rng=rng)
        factory = PacketFactory()
        ft = FiveTuple(1, 2, 3, 4)
        for t, fid in enumerate(flow_ids):
            pkt = factory.make(ft, 200, float(t), flow_id=fid, seq=t)
            sel = policy.select(pkt, paths, float(t))
            assert len(sel) >= 1
            assert len(set(sel)) == len(sel)
            assert all(0 <= pid < k for pid in sel)
