"""Tests for the time-series recorder and the closed-loop RPC client."""

import math

import numpy as np
import pytest

from repro import (
    MpdpConfig,
    MultipathDataPlane,
    PathConfig,
    RngRegistry,
    SHARED_CORE,
    Simulator,
)
from repro.metrics.timeseries import TimeSeries
from repro.net.rpc import ClosedLoopRpcClient


class TestTimeSeries:
    def test_buckets_by_window(self):
        ts = TimeSeries(window=100.0)
        ts.record(50.0, 1.0)
        ts.record(150.0, 2.0)
        ts.record(160.0, 3.0)
        assert ts.window_indices() == [0, 1]
        assert ts.count(0) == 1 and ts.count(1) == 2
        assert ts.window_start(1) == 100.0

    def test_percentiles_per_window(self):
        ts = TimeSeries(window=100.0)
        for v in range(100):
            ts.record(10.0, float(v))
        assert ts.percentile(0, 50) == pytest.approx(49.5, abs=1.0)
        assert math.isnan(ts.percentile(7, 50))

    def test_mean(self):
        ts = TimeSeries(window=10.0)
        ts.record(1.0, 2.0)
        ts.record(2.0, 4.0)
        assert ts.mean(0) == pytest.approx(3.0)

    def test_series_and_peak(self):
        ts = TimeSeries(window=10.0)
        ts.record(5.0, 1.0)
        ts.record(15.0, 100.0)
        ts.record(25.0, 10.0)
        times, vals = ts.series(99)
        assert list(times) == [0.0, 10.0, 20.0]
        assert ts.peak_window(99) == 1

    def test_bounded_memory(self):
        ts = TimeSeries(window=100.0, reservoir_per_window=50)
        for i in range(10_000):
            ts.record(1.0, float(i))
        assert ts.count(0) == 10_000
        assert len(ts._windows[0].values()) == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeries(window=0.0)
        with pytest.raises(ValueError):
            TimeSeries(reservoir_per_window=0)


def loopback_world(policy="adaptive", n_paths=4, concurrency=16,
                   duration=30_000.0, seed=6):
    """Client and server apps on the same host (loopback RPC)."""
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    host = MultipathDataPlane(
        sim,
        MpdpConfig(n_paths=n_paths, policy=policy,
                   path=PathConfig(jitter=SHARED_CORE)),
        rngs,
    )
    client = ClosedLoopRpcClient(
        sim, host.factory, host.input, host.input, rngs.stream("rpc"),
        concurrency=concurrency, duration=duration,
    )

    def app(pkt):
        client.on_server_delivery(pkt)
        client.on_client_delivery(pkt)

    host.sink.on_delivery = app
    client.start()
    sim.run(until=duration + 20_000.0)
    host.finalize()
    return client, host


class TestClosedLoopRpc:
    def test_window_stays_full(self):
        client, _ = loopback_world()
        # Conservation: issued = completed + still inflight (+ any that
        # stopped being reissued after the duration cutoff).
        assert client.completed > 0
        assert client.issued >= client.completed
        assert client.inflight <= client.concurrency

    def test_rtt_recorded_for_every_completion(self):
        client, _ = loopback_world()
        assert client.rtt.count == client.completed
        assert client.rtt.mean > 0

    def test_throughput_scales_with_concurrency_until_capacity(self):
        low, _ = loopback_world(concurrency=2, duration=20_000.0)
        high, _ = loopback_world(concurrency=32, duration=20_000.0)
        assert high.throughput_rps() > 2.0 * low.throughput_rps()

    def test_closed_loop_self_throttles(self):
        """Unlike open-loop sources, queue depth stays bounded by the
        concurrency window even on a single slow path."""
        client, host = loopback_world(policy="single", n_paths=1,
                                      concurrency=8)
        # In-flight bound implies path queues never exceed 2x window
        # (request + response per RPC).
        assert host.paths[0].queue.peak_occupancy <= 2 * 8


def faulted_loopback_world(policy="hash", n_paths=4, concurrency=16,
                           duration=30_000.0, seed=6,
                           hang_at=6_000.0, hang_for=10_000.0):
    """Loopback RPC world with a mid-run path hang + ejection enabled.

    A hang (unlike a crash) loses nothing by itself: the path just stops
    serving, so every in-flight request parked on it is stranded until
    the controller ejects the path and drains its queue onto live ones.
    """
    from repro import FaultSchedule
    from repro.faults import FaultInjector

    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    host = MultipathDataPlane(
        sim,
        MpdpConfig(n_paths=n_paths, policy=policy,
                   path=PathConfig(jitter=SHARED_CORE)),
        rngs,
    )
    client = ClosedLoopRpcClient(
        sim, host.factory, host.input, host.input, rngs.stream("rpc"),
        concurrency=concurrency, duration=duration,
    )

    def app(pkt):
        client.on_server_delivery(pkt)
        client.on_client_delivery(pkt)

    host.sink.on_delivery = app
    sched = FaultSchedule().hang(path=0, at=hang_at, duration=hang_for)
    injector = FaultInjector(sim, host, sched, rngs.stream("faults"))
    injector.install(horizon=duration, enable_ejection=True)
    client.start()
    # Generous post-traffic horizon so every outstanding RPC drains.
    sim.run(until=duration + 60_000.0)
    host.finalize()
    return client, host, injector


class TestClosedLoopRpcUnderFaults:
    def test_conservation_invariant_holds(self):
        client, host, injector = faulted_loopback_world()
        assert injector.faults_applied() == 1
        assert client.completed > 0
        # Conservation: every issued request is either completed or
        # still tracked in flight -- the fault cannot leak window slots.
        assert client.inflight + client.completed == client.issued

    def test_no_request_lost_on_mid_rtt_ejection(self):
        client, host, injector = faulted_loopback_world()
        ctl = host.controller
        # The hang actually triggered an ejection with traffic mid-RTT:
        # the hung path's queue was drained onto live paths.
        assert ctl.ejections >= 1
        assert ctl.rerouted > 0
        # ...and none of those packets vanished: after the drain horizon
        # the closed loop has fully quiesced, with one RTT sample per
        # completed request.
        assert client.inflight == 0
        assert client.completed == client.issued
        assert client.rtt.count == client.completed

    def test_faulted_run_matches_itself(self):
        a, _, _ = faulted_loopback_world()
        b, _, _ = faulted_loopback_world()
        assert (a.issued, a.completed, a.rtt.count) == \
            (b.issued, b.completed, b.rtt.count)
        assert a.rtt.mean == pytest.approx(b.rtt.mean)

    def test_multipath_beats_single_on_closed_loop_rtt_tail(self):
        single, _ = loopback_world(policy="single", n_paths=1, duration=60_000.0)
        multi, _ = loopback_world(policy="adaptive", n_paths=4, duration=60_000.0)
        assert multi.rtt.exact_percentile(99) < single.rtt.exact_percentile(99)

    def test_validation(self, sim, factory, rng):
        with pytest.raises(ValueError):
            ClosedLoopRpcClient(sim, factory, lambda p: None, lambda p: None,
                                rng, concurrency=0)
        c = ClosedLoopRpcClient(sim, factory, lambda p: None, lambda p: None, rng)
        c.start()
        with pytest.raises(RuntimeError):
            c.start()
