"""Unit tests for the calendar-queue scheduler backend.

The queue must produce the *exact* total order a single ``heapq``
produces over the engine's ``(time, key, fn, args)`` entries -- not an
approximation -- because ``Simulator`` swaps it in as a pure backend.
These tests drive :class:`repro.sim.calqueue.CalendarQueue` directly;
engine-level behavior (both backends through the public ``Simulator``
API) lives in ``tests/test_scheduler_backends.py``.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.sim.calqueue import _MIN_BUCKETS, CalendarQueue
from repro.sim.engine import _SEQ_BITS, LOW, NORMAL, URGENT


def entry(t, seq, priority=NORMAL):
    return (t, (priority << _SEQ_BITS) | seq, None, ())


class FakeSim:
    """The two attributes ``CalendarQueue.drain`` touches."""

    def __init__(self):
        self._now = 0.0
        self._processed = 0


class TestOrdering:
    def test_pop_exact_order_random(self):
        rng = random.Random(11)
        ref = []
        q = CalendarQueue()
        t = 0.0
        for i in range(5_000):
            t += rng.expovariate(2.0) * rng.choice((0.0, 1.0, 1.0, 40.0))
            e = entry(t, i, rng.choice((URGENT, NORMAL, LOW)))
            ref.append(e)
            q.push(e)
        ref.sort()
        got = [q.pop() for _ in range(len(ref))]
        assert got == ref
        assert len(q) == 0

    def test_matches_heapq_under_interleaved_pops(self):
        # Push in shuffled chunks, pop everything due before the next
        # chunk (the no-past-push contract the engine guarantees).
        rng = random.Random(23)
        t = 0.0
        script = []
        for i in range(4_000):
            t += rng.expovariate(1.0) * rng.choice((0.0, 0.5, 3.0))
            script.append(entry(t, i))
        chunks = [script[k:k + 101] for k in range(0, len(script), 101)]
        heap, hp_out = [], []
        q, cq_out = CalendarQueue(), []
        for i, chunk in enumerate(chunks):
            batch = chunk[:]
            rng.shuffle(batch)
            for e in batch:
                heapq.heappush(heap, e)
            nxt = chunks[i + 1][0][0] if i + 1 < len(chunks) else float("inf")
            while heap and heap[0][0] <= nxt:
                hp_out.append(heapq.heappop(heap))
            # A differently-shuffled push order for the calendar run:
            # pop order must not depend on push order.
            batch2 = chunk[:]
            random.Random(i).shuffle(batch2)
            for e in batch2:
                q.push(e)
            while len(q) and q.peek_time() <= nxt:
                cq_out.append(q.pop())
        assert [e[:2] for e in cq_out] == [e[:2] for e in hp_out]

    def test_same_time_priority_interleaving(self):
        # URGENT < NORMAL < LOW at one timestamp, FIFO within a class.
        q = CalendarQueue()
        q.push(entry(5.0, 1, LOW))
        q.push(entry(5.0, 2, URGENT))
        q.push(entry(5.0, 3, NORMAL))
        q.push(entry(5.0, 4, URGENT))
        q.push(entry(5.0, 5, LOW))
        seqs = [q.pop()[1] & ((1 << _SEQ_BITS) - 1) for _ in range(5)]
        assert seqs == [2, 4, 3, 1, 5]

    def test_far_future_years_defer_correctly(self):
        # Entries many calendar years ahead share physical buckets with
        # near entries; they must still pop strictly last.
        q = CalendarQueue(width=1.0, nbuckets=16)
        far = [entry(1e6 + i * 16.0, 100 + i) for i in range(8)]
        near = [entry(float(i), i) for i in range(8)]
        for e in far + near:
            q.push(e)
        got = [q.pop() for _ in range(16)]
        assert got == sorted(near) + sorted(far)

    def test_jump_to_min_skips_empty_years(self):
        q = CalendarQueue(width=1.0, nbuckets=16)
        q.push(entry(1e9, 1))
        assert q.pop() == entry(1e9, 1)


class TestResize:
    def test_grows_and_still_exact(self):
        rng = random.Random(3)
        q = CalendarQueue()
        ref = [entry(rng.uniform(0, 100), i) for i in range(3_000)]
        for e in ref:
            q.push(e)
        # growth happens lazily at pop time
        got = []
        widest = q._nbuckets
        for _ in range(len(ref)):
            got.append(q.pop())
            widest = max(widest, q._nbuckets)
        assert got == sorted(ref)
        assert widest > _MIN_BUCKETS

    def test_shrinks_back_to_floor(self):
        rng = random.Random(4)
        q = CalendarQueue()
        for i in range(3_000):
            q.push(entry(rng.uniform(0, 100), i))
        for _ in range(3_000):
            q.pop()
        assert len(q) == 0
        # one more cycle triggers the halving checks
        q.push(entry(200.0, 0))
        q.pop()
        assert q._nbuckets == _MIN_BUCKETS

    def test_zero_span_sample_keeps_width_positive(self):
        q = CalendarQueue()
        for i in range(200):
            q.push(entry(7.0, i))  # identical times: span == 0
        got = [q.pop() for _ in range(200)]
        assert got == [entry(7.0, i) for i in range(200)]
        assert q._width > 0.0


class TestDrain:
    def test_drain_dispatches_in_order_and_counts(self):
        rng = random.Random(9)
        q = CalendarQueue()
        out = []
        ref = []
        t = 0.0
        for i in range(2_000):
            t += rng.expovariate(1.0)
            ref.append((t, i))
            q.push((t, i, out.append, ((t, i),)))
        sim = FakeSim()
        q.drain(sim, float("inf"))
        assert out == sorted(ref)
        assert sim._processed == 2_000
        assert sim._now == ref[-1][0]
        assert len(q) == 0

    def test_drain_respects_until(self):
        q = CalendarQueue()
        out = []
        for i in range(100):
            q.push((float(i), i, out.append, (i,)))
        sim = FakeSim()
        q.drain(sim, 50.0)
        assert out == list(range(50))
        assert len(q) == 50
        q.drain(sim, float("inf"))
        assert out == list(range(100))

    def test_drain_handles_pushes_from_callbacks(self):
        q = CalendarQueue()
        sim = FakeSim()
        out = []

        def reschedule(i):
            out.append(i)
            if i < 500:
                q.push((sim._now + 0.25, i + 1, reschedule, (i + 1,)))

        q.push((0.0, 0, reschedule, (0,)))
        q.drain(sim, float("inf"))
        assert out == list(range(501))
        assert len(q) == 0


class TestMaintenance:
    def test_remove_if(self):
        q = CalendarQueue()
        for i in range(300):
            q.push(entry(float(i), i))
        removed = q.remove_if(lambda e: e[0] % 2 == 1)
        assert removed == 150
        assert len(q) == 150
        got = [q.pop()[0] for _ in range(150)]
        assert got == [float(i) for i in range(0, 300, 2)]

    def test_peek_time_and_len(self):
        q = CalendarQueue()
        assert q.peek_time() == float("inf")
        q.push(entry(3.5, 1))
        q.push(entry(1.5, 2))
        assert q.peek_time() == 1.5
        assert len(q) == 2
        q.pop()
        assert q.peek_time() == 3.5

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CalendarQueue(nbuckets=12)
        with pytest.raises(ValueError):
            CalendarQueue(width=0.0)
