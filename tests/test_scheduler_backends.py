"""Engine-level tests for the pluggable scheduler backends.

``Simulator`` runs on either a binary heap or a calendar queue
(:mod:`repro.sim.calqueue`); the backends must be observationally
identical -- same dispatch order, same results, byte-identical payloads
-- for every workload the library can produce.  This file pins that
contract through the public API: direct ``Simulator`` use, ``repro.run``
with every observation combination, sweeps, and cluster runs; plus the
backend-adjacent engine behaviors (sequence-space guard, lazy-deletion
compaction, pooled-timeout recycling).
"""

from __future__ import annotations

import json

import pytest

import repro
from repro import FaultSchedule, RunOptions, ScenarioConfig, Telemetry
from repro.cluster import ClusterConfig, FabricConfig, run_cluster
from repro.sim.engine import (
    _COMPACT_MIN,
    _SEQ_MAX,
    LOW,
    NORMAL,
    URGENT,
    SCHEDULERS,
    Simulator,
    default_scheduler,
)
from repro.sim.errors import SimulationError
from repro.sweep import Axis, SweepSpec, run_sweep

BACKENDS = list(SCHEDULERS)

BASE = dict(
    policy="adaptive",
    n_paths=4,
    load=0.7,
    duration=8_000.0,
    warmup=1_000.0,
    drain=4_000.0,
    seed=42,
)


def payload(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def run_base(scheduler, **kw):
    return repro.run(ScenarioConfig(**BASE), RunOptions(scheduler=scheduler, **kw))


# ----------------------------------------------------------------------
# Backend selection plumbing
# ----------------------------------------------------------------------
class TestSelection:
    def test_default_is_calendar(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        assert default_scheduler() == "calendar"
        assert Simulator().scheduler == "calendar"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "heap")
        assert default_scheduler() == "heap"
        assert Simulator().scheduler == "heap"
        # explicit argument beats the environment
        assert Simulator(scheduler="calendar").scheduler == "calendar"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "splay-tree")
        with pytest.raises(SimulationError, match="splay-tree"):
            default_scheduler()

    def test_invalid_argument_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(scheduler="fibheap")

    def test_run_options_validates(self):
        with pytest.raises(ValueError, match="scheduler"):
            RunOptions(scheduler="fibheap")


# ----------------------------------------------------------------------
# Behavioral equivalence through the Simulator API
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", BACKENDS)
class TestEngineBehavior:
    def test_same_time_priority_interleaving(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        out = []
        sim.call_at(5.0, out.append, "low-1", priority=LOW)
        sim.call_at(5.0, out.append, "urgent-1", priority=URGENT)
        sim.call_at(5.0, out.append, "normal-1", priority=NORMAL)
        sim.call_at(5.0, out.append, "urgent-2", priority=URGENT)
        sim.call_at(5.0, out.append, "low-2", priority=LOW)
        sim.run()
        assert out == ["urgent-1", "urgent-2", "normal-1", "low-1", "low-2"]

    def test_seq_space_guard(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        sim._seq = _SEQ_MAX  # next allocation would overflow the packing
        with pytest.raises(SimulationError, match="sequence space exhausted"):
            sim.call_at(1.0, lambda: None)
        with pytest.raises(SimulationError, match="sequence space exhausted"):
            sim.call_in(1.0, lambda: None)
        with pytest.raises(SimulationError, match="sequence space exhausted"):
            sim.timeout(1.0)

    def test_seq_below_guard_still_works(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        sim._seq = _SEQ_MAX - 2
        out = []
        sim.call_at(1.0, out.append, 1)
        sim.call_at(1.0, out.append, 2)
        sim.run()
        assert out == [1, 2]

    def test_pooled_timeout_recycled_not_retained(self, scheduler):
        # The retention contract: a pooled timeout is reclaimed right
        # after its callbacks run.  The resumed process allocates its
        # next timeout *during* those callbacks, so recycling shows up
        # one hop later: the third yield reuses the first object.
        sim = Simulator(scheduler=scheduler)
        seen = []

        def proc():
            for _ in range(3):
                t = sim.pooled_timeout(1.0)
                seen.append(t)
                yield t

        sim.process(proc())
        sim.run()
        assert seen[1] is not seen[0]  # first still in flight at that point
        assert seen[2] is seen[0]  # recycled through the free list
        assert len(sim._timeout_pool) == 2  # all reclaimed at the end

    def test_cancel_heavy_schedule_stays_bounded(self, scheduler):
        # Regression test for lazy deletion: cancelling periodics leaves
        # dead entries behind, and compaction must keep the schedule from
        # growing linearly with cancellations.
        sim = Simulator(scheduler=scheduler)
        n = 40 * _COMPACT_MIN
        live = sim.periodic(1.0, lambda: None)

        def churn():
            for i in range(n):
                h = sim.periodic(1_000_000.0, lambda: None)
                h.cancel()
                yield sim.pooled_timeout(0.001)

        sim.process(churn())
        # sample pending_count as the churn runs
        probe = sim.periodic(0.5, lambda: None)
        sim.run(until=sim.now + n * 0.001 + 1.0)
        probe.cancel()
        live.cancel()
        # dead entries never dominate: the bound is one compaction period
        # (live entries + as many dead ones), far below n.
        assert sim.pending_count <= 2 * (_COMPACT_MIN + 16)
        assert sim._dead * 2 <= sim.pending_count + 2 * _COMPACT_MIN

    def test_cancelled_periodic_never_fires_after_compaction(self, scheduler):
        sim = Simulator(scheduler=scheduler)
        fired = []
        handles = [sim.periodic(1.0, lambda i=i: fired.append(i))
                   for i in range(2 * _COMPACT_MIN)]
        for h in handles[1:]:
            h.cancel()
        sim.run(until=5.5)
        handles[0].cancel()
        assert set(fired) == {0}
        assert handles[0].fired == 5


# ----------------------------------------------------------------------
# Cross-backend bit-identity for every golden scenario
# ----------------------------------------------------------------------
class TestCrossBackendIdentity:
    def pair(self, **opt_kw):
        return [payload(run_base(s, **opt_kw)) for s in BACKENDS]

    def test_plain_run(self):
        a, b = self.pair()
        assert a == b

    def test_telemetry_on(self):
        off = self.pair()
        on = [payload(run_base(s, telemetry=Telemetry())) for s in BACKENDS]
        assert on[0] == on[1] == off[0]

    def test_faulted_run(self):
        results = []
        for s in BACKENDS:
            sched = FaultSchedule().crash(path=1, at=3_000.0, duration=2_000.0)
            results.append(payload(run_base(s, faults=sched)))
        assert results[0] == results[1]

    def test_check_armed(self):
        a, b = [payload(run_base(s, check=True)) for s in BACKENDS]
        assert a == b

    def test_sweep_jobs_1_vs_4_both_backends(self, monkeypatch, tmp_path):
        spec_kw = dict(
            name="backend-smoke",
            base=dict(policy="adaptive", load=0.6, duration=5_000.0,
                      warmup=500.0, drain=2_000.0, seed=7),
            axes=[Axis("load", [0.4, 0.7])],
        )
        payloads = set()
        for scheduler in BACKENDS:
            monkeypatch.setenv("REPRO_SCHEDULER", scheduler)
            for jobs in (1, 4):
                sweep = run_sweep(SweepSpec(**spec_kw), jobs=jobs,
                                  cache=False, progress=None)
                # cells only: the envelope carries wall-clock timings
                canon = [(c.params, c.summary.to_dict(), c.exact, c.stats)
                         for c in sweep.cells]
                payloads.add(json.dumps(canon, sort_keys=True))
        assert len(payloads) == 1

    def test_cluster_workers_1_vs_4_both_backends(self):
        template = ScenarioConfig(policy="adaptive", n_paths=4, load=0.4,
                                  duration=4_000.0, warmup=500.0,
                                  drain=1_500.0)
        payloads = set()
        for scheduler in BACKENDS:
            cc = ClusterConfig.uniform_hosts(3, template, FabricConfig())
            for workers in (1, 4):
                res = run_cluster(cc, workers=workers, scheduler=scheduler)
                payloads.add(json.dumps(res.to_dict(), sort_keys=True))
        assert len(payloads) == 1
