"""Tests for events and condition events (repro.sim.events)."""

import pytest

from repro.sim import AllOf, AnyOf, SimulationError, Timeout


class TestEvent:
    def test_initially_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_unavailable_before_trigger(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_succeed_sets_value(self, sim):
        ev = sim.event()
        ev.succeed(99)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 99

    def test_double_trigger_rejected(self, sim):
        ev = sim.event().succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(ValueError())

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_callbacks_run_with_event(self, sim):
        ev = sim.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("v")
        sim.run()
        assert seen == ["v"]
        assert ev.processed

    def test_unhandled_failure_propagates_from_run(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_defused_failure_is_silent(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("handled"))
        ev.defuse()
        sim.run()  # must not raise

    def test_trigger_copies_outcome(self, sim):
        a, b = sim.event(), sim.event()
        a.callbacks.append(b.trigger)
        a.succeed(7)
        sim.run()
        assert b.value == 7


class TestTimeout:
    def test_fires_after_delay(self, sim):
        t = sim.timeout(12.0, value="done")
        result = sim.run(until=t)
        assert result == "done"
        assert sim.now == 12.0

    def test_zero_delay_allowed(self, sim):
        t = sim.timeout(0.0)
        sim.run(until=t)
        assert sim.now == 0.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_cannot_retrigger(self, sim):
        t = sim.timeout(1.0)
        with pytest.raises(SimulationError):
            t.succeed()
        with pytest.raises(SimulationError):
            t.fail(ValueError())

    def test_ordering_of_timeouts(self, sim):
        seen = []
        for d in (3.0, 1.0, 2.0):
            ev = sim.timeout(d, value=d)
            ev.callbacks.append(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [1.0, 2.0, 3.0]


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        t1, t2 = sim.timeout(1.0, value="a"), sim.timeout(5.0, value="b")
        cond = AllOf(sim, [t1, t2])
        result = sim.run(until=cond)
        assert sim.now == 5.0
        assert set(result.values()) == {"a", "b"}

    def test_any_of_fires_on_first(self, sim):
        t1, t2 = sim.timeout(1.0, value="fast"), sim.timeout(5.0, value="slow")
        cond = AnyOf(sim, [t1, t2])
        result = sim.run(until=cond)
        assert sim.now == 1.0
        assert list(result.values()) == ["fast"]

    def test_empty_condition_fires_immediately(self, sim):
        cond = AllOf(sim, [])
        result = sim.run(until=cond)
        assert result == {}

    def test_condition_over_already_processed_event(self, sim):
        t = sim.timeout(1.0, value="x")
        sim.run(until=t)
        cond = AllOf(sim, [t])
        result = sim.run(until=cond)
        assert list(result.values()) == ["x"]

    def test_failed_sub_event_fails_condition(self, sim):
        ev = sim.event()
        t = sim.timeout(10.0)
        cond = AllOf(sim, [ev, t])
        sim.call_at(1.0, ev.fail, ValueError("sub failed"))
        with pytest.raises(ValueError, match="sub failed"):
            sim.run(until=cond)

    def test_mixed_simulator_events_rejected(self, sim):
        from repro.sim import Simulator

        other = Simulator()
        with pytest.raises(SimulationError):
            AllOf(sim, [other.event()])
