"""Tests for RNG streams and the tracer."""

import numpy as np

from repro.sim import NullTracer, RngRegistry, Tracer, spawn_streams


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=1).stream("x")
        b = RngRegistry(seed=1).stream("x")
        assert a.random() == b.random()

    def test_different_names_independent(self):
        reg = RngRegistry(seed=1)
        a = reg.stream("a").random(100)
        b = reg.stream("b").random(100)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x").random(10)
        b = RngRegistry(seed=2).stream("x").random(10)
        assert not np.allclose(a, b)

    def test_creation_order_does_not_matter(self):
        r1 = RngRegistry(seed=9)
        r1.stream("first")
        v1 = r1.stream("second").random()
        r2 = RngRegistry(seed=9)
        v2 = r2.stream("second").random()  # created without "first"
        assert v1 == v2

    def test_stream_is_cached(self):
        reg = RngRegistry(seed=3)
        assert reg.stream("s") is reg.stream("s")
        assert "s" in reg
        assert len(reg) == 1

    def test_streams_vector_form(self):
        reg = RngRegistry(seed=3)
        out = reg.streams(["a", "b"])
        assert len(out) == 2

    def test_spawn_streams_independent(self):
        s = spawn_streams(7, 3)
        assert len(s) == 3
        assert s[0].random() != s[1].random()


class TestTracer:
    def test_records_accumulate(self):
        t = Tracer()
        t.record(1.0, "stage_a", 1, 0.5)
        t.record(2.0, "stage_a", 2, 0.7)
        t.record(2.0, "stage_b", 1, 1.5)
        assert len(t) == 3
        assert t.by_stage()["stage_a"] == [0.5, 0.7]
        assert abs(t.stage_totals()["stage_b"] - 1.5) < 1e-12

    def test_per_packet(self):
        t = Tracer()
        t.record(1.0, "a", 7, 0.1)
        t.record(2.0, "b", 7, 0.2)
        t.record(2.0, "a", 8, 0.3)
        assert [r.stage for r in t.per_packet(7)] == ["a", "b"]

    def test_clear(self):
        t = Tracer()
        t.record(1.0, "a", 1, 0.1)
        t.clear()
        assert len(t) == 0

    def test_null_tracer_is_noop(self):
        NullTracer.record(1.0, "a", 1, 0.1)
        assert len(NullTracer) == 0
        assert NullTracer.by_stage() == {}
        assert NullTracer.stage_totals() == {}
        assert NullTracer.per_packet(1) == []
        assert not NullTracer.enabled
