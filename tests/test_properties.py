"""Property-based tests (hypothesis) on core data structures and invariants."""

import heapq
import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import Deduplicator, FlowletTable, ReorderBuffer, Replicator
from repro.elements import CountMinSketch
from repro.metrics import P2Quantile, ReservoirSampler
from repro.net.packet import FiveTuple, PacketFactory
from repro.net.workloads import EmpiricalCDF
from repro.sim import Simulator

finite_floats = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestEventLoopProperties:
    @given(st.lists(st.tuples(finite_floats, st.integers(0, 2)), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_dispatch_order_is_time_then_priority_then_fifo(self, entries):
        sim = Simulator()
        seen = []
        for i, (t, prio) in enumerate(entries):
            sim.call_at(t, seen.append, (t, prio, i), priority=prio)
        sim.run()
        assert seen == sorted(seen)

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_clock_is_monotone(self, times):
        sim = Simulator()
        observed = []
        for t in times:
            sim.call_at(t, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)


class TestP2Properties:
    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
            min_size=20,
            max_size=500,
        ),
        st.sampled_from([0.5, 0.9, 0.99]),
    )
    @settings(max_examples=50, deadline=None)
    def test_estimate_bounded_by_sample_range(self, data, q):
        est = P2Quantile(q)
        for x in data:
            est.add(x)
        assert min(data) <= est.value <= max(data)

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_small_samples_exact_quantile(self, data):
        est = P2Quantile(0.5)
        for x in data:
            est.add(x)
        assert est.value == float(np.quantile(np.array(data), 0.5))


class TestReservoirProperties:
    @given(st.lists(finite_floats, max_size=300), st.integers(1, 50))
    @settings(max_examples=50, deadline=None)
    def test_size_never_exceeds_capacity(self, data, cap):
        r = ReservoirSampler(capacity=cap)
        for x in data:
            r.add(x)
        vals = r.values()
        assert len(vals) == min(len(data), cap)
        # Everything retained was actually in the stream.
        assert set(vals) <= set(data) or len(data) == 0


class TestCountMinProperties:
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_never_undercounts(self, keys):
        cms = CountMinSketch(width=64, depth=3)
        true = {}
        for k in keys:
            cms.add(k)
            true[k] = true.get(k, 0) + 1
        for k, v in true.items():
            assert cms.estimate(k) >= v

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_total_preserved(self, keys):
        cms = CountMinSketch(width=64, depth=3)
        for k in keys:
            cms.add(k)
        assert cms.total == len(keys)


class TestReorderProperties:
    @given(st.permutations(list(range(12))), st.floats(min_value=1.0, max_value=100.0))
    @settings(max_examples=60, deadline=None)
    def test_any_arrival_order_delivers_everything_in_order(self, order, spacing):
        """With no losses and a generous timeout, the reorder buffer must
        deliver every packet exactly once, in sequence order."""
        sim = Simulator()
        delivered = []
        rb = ReorderBuffer(sim, lambda p: delivered.append(p.seq), timeout=1e9)
        factory = PacketFactory()
        ft = FiveTuple(1, 2, 3, 4)
        for i, seq in enumerate(order):
            pkt = factory.make(ft, 100, 0.0, flow_id=1, seq=seq)
            sim.call_at(i * spacing, rb.on_packet, pkt)
        sim.run()
        rb.flush_all()
        assert delivered == sorted(order)

    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=60),
        st.floats(min_value=10.0, max_value=200.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_delivery_count_equals_arrival_count_with_timeout(self, seqs, timeout):
        """Even with gaps/duplicates and timeout flushes, every arrived
        packet is delivered exactly once (no loss, no duplication)."""
        sim = Simulator()
        delivered = []
        rb = ReorderBuffer(sim, lambda p: delivered.append(p.pid), timeout=timeout)
        factory = PacketFactory()
        ft = FiveTuple(1, 2, 3, 4)
        for i, seq in enumerate(seqs):
            pkt = factory.make(ft, 100, 0.0, flow_id=1, seq=seq)
            sim.call_at(i * 5.0, rb.on_packet, pkt)
        sim.run()
        rb.flush_all()
        assert sorted(delivered) == sorted(range(len(seqs)))


class TestDedupProperties:
    @given(st.integers(2, 6), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_exactly_one_delivery_any_completion_order(self, n_copies, rnd):
        factory = PacketFactory()
        rep = Replicator(factory)
        dedup = Deduplicator()
        p = factory.make(FiveTuple(1, 2, 3, 4), 100, 0.0)
        copies = [p] + rep.replicate(p, n_copies - 1)
        dedup.register(p, n_copies)
        rnd.shuffle(copies)
        delivered = sum(dedup.should_deliver(c) for c in copies)
        assert delivered == 1
        assert dedup.outstanding == 0

    @given(st.integers(2, 6), st.integers(0, 5), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_drops_never_block_delivery_of_survivor(self, n_copies, n_drops, rnd):
        assume(n_drops < n_copies)
        factory = PacketFactory()
        rep = Replicator(factory)
        dedup = Deduplicator()
        p = factory.make(FiveTuple(1, 2, 3, 4), 100, 0.0)
        copies = [p] + rep.replicate(p, n_copies - 1)
        dedup.register(p, n_copies)
        rnd.shuffle(copies)
        dropped, completed = copies[:n_drops], copies[n_drops:]
        for c in dropped:
            dedup.on_copy_dropped(c)
        delivered = sum(dedup.should_deliver(c) for c in completed)
        assert delivered == 1
        assert dedup.outstanding == 0


class TestFlowletProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.floats(min_value=0, max_value=1e4)),
            min_size=1,
            max_size=100,
        ),
        st.floats(min_value=1.0, max_value=500.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_lookup_never_returns_unassigned_path(self, events, timeout):
        table = FlowletTable(timeout=timeout)
        assigned = {}
        for flow, t_raw in sorted(events, key=lambda e: e[1]):
            t = float(t_raw)
            result = table.lookup(flow, t)
            if result is None:
                table.assign(flow, flow % 3, t)
                assigned[flow] = flow % 3
            else:
                assert result == assigned[flow]


class TestEmpiricalCDFProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
                st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
            ),
            min_size=2,
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_samples_stay_within_support(self, raw_points):
        values = sorted({round(v, 3) for v, _ in raw_points})
        assume(len(values) >= 2)
        probs = sorted({round(p, 3) for _, p in raw_points})[: len(values) - 1]
        assume(len(probs) == len(values) - 1)
        points = list(zip(values, probs + [1.0]))
        cdf = EmpiricalCDF(points)
        rng = np.random.default_rng(0)
        s = cdf.sample(rng, 500)
        assert s.min() >= values[0] * (1 - 1e-9)
        assert s.max() <= values[-1] * (1 + 1e-9)


class TestVCpuProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=50.0, allow_nan=False), min_size=1, max_size=100),
        st.integers(0, 2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_work_conservation_and_serialization(self, costs, seed):
        from repro.dataplane import JitterParams, VCpu

        cpu = VCpu(
            rng=np.random.default_rng(seed),
            params=JitterParams(mean_run=100.0, stall_median=20.0),
        )
        t, prev_finish = 0.0, 0.0
        total = 0.0
        for c in costs:
            s, f = cpu.execute(t, c)
            assert s >= prev_finish  # serialized
            assert f - s >= c - 1e-9  # stalls only stretch
            prev_finish = f
            t = f
            total += c
        assert math.isclose(cpu.busy_time, total, rel_tol=1e-9, abs_tol=1e-9)
