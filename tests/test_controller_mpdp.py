"""Tests for the controller and the MultipathDataPlane facade."""

import pytest

from repro import (
    MpdpConfig,
    MultipathDataPlane,
    PathConfig,
    PoissonSource,
    RngRegistry,
    SHARED_CORE,
    Simulator,
)
from repro.core import PathController, StragglerDetector
from repro.core.policies import RedundantK, SinglePath
from repro.dataplane.path import DataPath
from repro.elements import Chain, Delay
from repro.elements.nf import AclFirewall, AclRule


def build(policy="adaptive", n_paths=4, seed=3, **cfg_kw):
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    cfg = MpdpConfig(n_paths=n_paths, policy=policy, **cfg_kw)
    host = MultipathDataPlane(sim, cfg, rngs)
    return sim, rngs, host


class TestPathController:
    def test_ticks_and_history(self, sim, rng):
        paths = [
            DataPath(sim, i, Chain([Delay("d")]), lambda p: None, rng=rng)
            for i in range(2)
        ]
        ctl = PathController(sim, paths, StragglerDetector(), interval=100.0)
        ctl.start()
        sim.run(until=1050.0)
        assert ctl.ticks == 10
        assert len(ctl.history) == 10
        assert ctl.history[0].time == 100.0

    def test_weights_normalized(self, sim, rng):
        paths = [
            DataPath(sim, i, Chain([Delay("d")]), lambda p: None, rng=rng)
            for i in range(3)
        ]
        ctl = PathController(sim, paths, StragglerDetector(), interval=50.0)
        ctl.start()
        sim.run(until=200.0)
        assert sum(ctl.weights) == pytest.approx(1.0)

    def test_stop_halts_ticking(self, sim, rng):
        paths = [DataPath(sim, 0, Chain([Delay("d")]), lambda p: None, rng=rng)]
        ctl = PathController(sim, paths, StragglerDetector(), interval=10.0)
        ctl.start()
        sim.call_at(55.0, ctl.stop)
        sim.run()  # must terminate (no infinite self-rescheduling)
        assert ctl.ticks <= 6

    def test_healthy_fraction(self, sim, rng):
        paths = [DataPath(sim, 0, Chain([Delay("d")]), lambda p: None, rng=rng)]
        ctl = PathController(sim, paths, StragglerDetector(), interval=10.0)
        ctl.start()
        sim.call_at(100.0, ctl.stop)
        sim.run()
        assert ctl.healthy_fraction() == 1.0

    def test_invalid_interval(self, sim):
        with pytest.raises(ValueError):
            PathController(sim, [], StragglerDetector(), interval=0.0)


class TestMpdpConstruction:
    def test_single_path_baseline(self):
        sim, rngs, host = build(policy="single", n_paths=1)
        assert len(host.paths) == 1
        assert host.reorder is None  # single path never reorders

    def test_reorder_auto_from_policy(self):
        _, _, host_hash = build(policy="hash")
        assert host_hash.reorder is None
        _, _, host_spray = build(policy="spray")
        assert host_spray.reorder is not None

    def test_reorder_forced(self):
        _, _, host = build(policy="hash", use_reorder=True)
        assert host.reorder is not None

    def test_policy_instance_accepted(self):
        sim = Simulator()
        host = MultipathDataPlane(
            sim, MpdpConfig(n_paths=2, policy=SinglePath(path_id=1)), RngRegistry(1)
        )
        assert host.policy.path_id == 1

    def test_chain_replicas_independent(self):
        _, _, host = build(n_paths=3, chain="nat")
        nats = [p.chain.elements[2] for p in host.paths]  # fc, fw, nat, mon
        assert len({id(n) for n in nats}) == 3

    def test_invalid_n_paths(self):
        with pytest.raises(ValueError):
            MpdpConfig(n_paths=0)

    def test_controller_disabled(self):
        _, _, host = build(controller_interval=0.0)
        assert host.controller is None


class TestMpdpDataflow:
    def test_packets_flow_end_to_end(self):
        sim, rngs, host = build(policy="rr", n_paths=2)
        src = PoissonSource(
            sim, host.factory, host.input, rngs.stream("t"),
            rate_pps=100_000, duration=5_000.0,
        )
        src.start()
        sim.run(until=10_000.0)
        host.finalize()
        assert host.sink.delivered == src.stats.packets
        assert host.ingress_count == src.stats.packets
        assert host.sink.recorder.count > 0

    def test_conservation_no_loss_config(self):
        sim, rngs, host = build(policy="spray", n_paths=4)
        src = PoissonSource(
            sim, host.factory, host.input, rngs.stream("t"),
            rate_pps=200_000, duration=5_000.0,
        )
        src.start()
        sim.run(until=20_000.0)
        host.finalize()
        st = host.stats()
        assert st["delivered"] + sum(st["drops"].values()) + st["nic_drops"] == st["ingress"]

    def test_redundancy_conservation(self):
        sim, rngs, host = build(policy="redundant2", n_paths=4)
        src = PoissonSource(
            sim, host.factory, host.input, rngs.stream("t"),
            rate_pps=100_000, duration=5_000.0,
        )
        src.start()
        sim.run(until=20_000.0)
        host.finalize()
        st = host.stats()
        # Every ingress packet delivered exactly once; replicas suppressed.
        assert st["delivered"] == st["ingress"]
        assert st["suppressed"] == st["replicas"]
        assert host.dedup.outstanding == 0

    def test_chain_drops_counted(self):
        sim = Simulator()
        rngs = RngRegistry(9)
        chain = Chain([AclFirewall(rules=[AclRule(action="deny")])], name="denyall")
        host = MultipathDataPlane(
            sim, MpdpConfig(n_paths=2, policy="rr"), rngs, chain=chain
        )
        src = PoissonSource(
            sim, host.factory, host.input, rngs.stream("t"),
            rate_pps=100_000, duration=1_000.0,
        )
        src.start()
        sim.run(until=5_000.0)
        host.finalize()
        assert host.sink.delivered == 0
        assert sum(host.drops.values()) == src.stats.packets

    def test_queue_overflow_under_overload(self):
        sim, rngs, host = build(
            policy="single",
            n_paths=1,
            path=PathConfig(queue_capacity=32),
        )
        # Offered load far above one path's ~1 Mpps capacity.
        src = PoissonSource(
            sim, host.factory, host.input, rngs.stream("t"),
            rate_pps=5_000_000, duration=5_000.0,
        )
        src.start()
        sim.run(until=10_000.0)
        host.finalize()
        st = host.stats()
        assert st["drops"].get("queue:overflow", 0) > 0

    def test_cpu_accounting_positive(self):
        sim, rngs, host = build(policy="rr")
        src = PoissonSource(
            sim, host.factory, host.input, rngs.stream("t"),
            rate_pps=100_000, duration=2_000.0,
        )
        src.start()
        sim.run(until=10_000.0)
        host.finalize()
        assert host.total_cpu_time() > 0
        assert host.cpu_per_delivered() > 0

    def test_redundancy_costs_more_cpu(self):
        def cpu_per_pkt(policy):
            sim, rngs, host = build(policy=policy, seed=11)
            src = PoissonSource(
                sim, host.factory, host.input, rngs.stream("t"),
                rate_pps=100_000, duration=5_000.0,
            )
            src.start()
            sim.run(until=20_000.0)
            host.finalize()
            return host.cpu_per_delivered()

        assert cpu_per_pkt("redundant2") > 1.3 * cpu_per_pkt("rr")

    def test_deterministic_given_seed(self):
        def run():
            sim, rngs, host = build(policy="adaptive", seed=42,
                                    path=PathConfig(jitter=SHARED_CORE))
            src = PoissonSource(
                sim, host.factory, host.input, rngs.stream("t"),
                rate_pps=300_000, duration=10_000.0,
            )
            src.start()
            sim.run(until=15_000.0)
            host.finalize()
            return (host.sink.delivered, host.sink.recorder.mean,
                    host.total_cpu_time())

        assert run() == run()

    def test_stats_snapshot_keys(self):
        sim, rngs, host = build(policy="spray")
        src = PoissonSource(
            sim, host.factory, host.input, rngs.stream("t"),
            rate_pps=50_000, duration=1_000.0,
        )
        src.start()
        sim.run(until=5_000.0)
        host.finalize()
        st = host.stats()
        for key in ("ingress", "delivered", "cpu_time", "path_completed", "reorder"):
            assert key in st
