"""Tests for multi-class queue disciplines (prio / DRR)."""

import pytest

from repro.dataplane.path import DataPath, PathConfig
from repro.dataplane.scheduler import DrrPathQueue, PriorityPathQueue
from repro.elements import Chain, Delay


class TestPriorityQueue:
    def test_higher_class_served_first(self, sim, mk_packet):
        q = PriorityPathQueue(sim, n_classes=2)
        bulk = mk_packet(seq=0, priority=0)
        urgent = mk_packet(seq=1, priority=1)
        q.push(bulk)
        q.push(urgent)
        assert q.pop() is urgent
        assert q.pop() is bulk

    def test_fifo_within_class(self, sim, mk_packet):
        q = PriorityPathQueue(sim, n_classes=2)
        a, b = mk_packet(seq=0, priority=1), mk_packet(seq=1, priority=1)
        q.push(a)
        q.push(b)
        assert q.pop() is a

    def test_priority_clamped_to_classes(self, sim, mk_packet):
        q = PriorityPathQueue(sim, n_classes=2)
        q.push(mk_packet(priority=99))
        assert q.class_depth(1) == 1
        q2 = PriorityPathQueue(sim, n_classes=2)
        q2.push(mk_packet(priority=-3))
        assert q2.class_depth(0) == 1

    def test_overflow_evicts_bulk_for_urgent(self, sim, mk_packet):
        q = PriorityPathQueue(sim, capacity_pkts=2, n_classes=2)
        q.push(mk_packet(seq=0, priority=0))
        q.push(mk_packet(seq=1, priority=0))
        urgent = mk_packet(seq=2, priority=1)
        assert q.push(urgent)
        assert q.evicted == 1
        assert len(q) == 2
        assert q.pop() is urgent

    def test_overflow_drops_bulk_when_no_victim(self, sim, mk_packet):
        q = PriorityPathQueue(sim, capacity_pkts=1, n_classes=2)
        q.push(mk_packet(seq=0, priority=1))
        extra = mk_packet(seq=1, priority=0)
        assert not q.push(extra)
        assert extra.dropped and "overflow" in extra.dropped

    def test_head_wait_across_classes(self, sim, mk_packet):
        q = PriorityPathQueue(sim)
        old = mk_packet(priority=0)
        q.push(old)  # t_enq = 0
        assert q.head_wait(40.0) == 40.0

    def test_pop_empty_raises(self, sim):
        with pytest.raises(IndexError):
            PriorityPathQueue(sim).pop()

    def test_pop_batch(self, sim, mk_packet):
        q = PriorityPathQueue(sim)
        for i in range(3):
            q.push(mk_packet(seq=i, priority=i % 2))
        batch = q.pop_batch(10)
        assert len(batch) == 3
        assert batch[0].priority == 1  # urgent first

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            PriorityPathQueue(sim, capacity_pkts=0)
        with pytest.raises(ValueError):
            PriorityPathQueue(sim, n_classes=0)


class TestDrrQueue:
    def test_byte_fair_between_classes(self, sim, mk_packet):
        q = DrrPathQueue(sim, quanta=(1500, 1500))
        # 6 bulk + 6 urgent, same size: service alternates fairly.
        for i in range(6):
            q.push(mk_packet(seq=i, priority=0, size=1000))
            q.push(mk_packet(seq=100 + i, priority=1, size=1000))
        served = [q.pop().priority for _ in range(12)]
        # Equal quanta, equal sizes: equal service, short alternation runs.
        assert served.count(0) == 6 and served.count(1) == 6
        from itertools import groupby

        max_run = max(len(list(g)) for _k, g in groupby(served))
        assert max_run <= 2

    def test_weighted_quanta_favor_class(self, sim, mk_packet):
        q = DrrPathQueue(sim, quanta=(1000, 3000))
        for i in range(20):
            q.push(mk_packet(seq=i, priority=0, size=1000))
            q.push(mk_packet(seq=100 + i, priority=1, size=1000))
        first12 = [q.pop().priority for _ in range(12)]
        # Class 1 has 3x the quantum -> ~3x the service share.
        assert first12.count(1) >= 2 * first12.count(0)

    def test_idle_class_accumulates_no_credit(self, sim, mk_packet):
        q = DrrPathQueue(sim, quanta=(1500, 1500))
        for i in range(4):
            q.push(mk_packet(seq=i, priority=0, size=1000))
        for _ in range(4):
            assert q.pop().priority == 0
        # Now class 1 arrives; it must not have banked rounds of credit.
        q.push(mk_packet(seq=10, priority=1, size=1000))
        q.push(mk_packet(seq=11, priority=0, size=1000))
        got = {q.pop().priority, q.pop().priority}
        assert got == {0, 1}

    def test_pop_empty_raises(self, sim):
        with pytest.raises(IndexError):
            DrrPathQueue(sim).pop()

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            DrrPathQueue(sim, quanta=(0, 100))


class TestDataPathIntegration:
    @pytest.mark.parametrize("qdisc", ["prio", "drr"])
    def test_qdisc_selectable(self, sim, rng, mk_packet, qdisc):
        done = []
        dp = DataPath(
            sim, 0, Chain([Delay("d", base_cost=1.0)]), done.append,
            rng=rng, config=PathConfig(qdisc=qdisc),
        )
        dp.enqueue(mk_packet(priority=1))
        dp.enqueue(mk_packet(seq=1, priority=0))
        sim.run()
        assert len(done) == 2

    def test_prio_lowers_urgent_latency_under_backlog(self, sim, rng, mk_packet):
        done = []
        dp = DataPath(
            sim, 0, Chain([Delay("d", base_cost=2.0)]), done.append,
            rng=rng, config=PathConfig(qdisc="prio", batch_size=4),
        )
        # 20 bulk packets then one urgent: urgent must overtake.
        for i in range(20):
            dp.enqueue(mk_packet(seq=i, priority=0))
        urgent = mk_packet(seq=99, priority=1)
        dp.enqueue(urgent)
        sim.run()
        finished = [p.seq for p in done]
        assert finished.index(99) < 6  # served within the first batches

    def test_unknown_qdisc_rejected(self, sim, rng):
        with pytest.raises(ValueError):
            DataPath(sim, 0, Chain([Delay("d")]), lambda p: None, rng=rng,
                     config=PathConfig(qdisc="wfq"))
