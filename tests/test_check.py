"""Tests for repro.check: invariant engine, fuzzer, differ, RunOptions."""

import dataclasses
import json
import warnings

import pytest

import repro
from repro import RunOptions
from repro.bench.scenarios import ScenarioConfig, run_scenario
from repro.check import (
    CheckSpec, InvariantEngine, InvariantViolation, NullInvariants,
)
from repro.check.diff import deep_diff, diff_scenario
from repro.check.fuzz import fuzz_scenarios, generate_config, shrink_config
from repro.check.selftest import mutation_selftest


def fast_config(**kw):
    """A tiny scenario that still exercises the whole data plane."""
    base = dict(policy="adaptive", n_paths=3, chain="basic", load=0.6,
                duration=3000.0, warmup=300.0, drain=2000.0, seed=7,
                n_flows=32)
    base.update(kw)
    return ScenarioConfig(**base)


@pytest.fixture
def broken_dedup(monkeypatch):
    """Class-patch Deduplicator to deliver every replicated copy."""
    from repro.core.replicator import Deduplicator

    original = Deduplicator.should_deliver

    def deliver_every_copy(self, packet):
        original(self, packet)
        return True

    monkeypatch.setattr(Deduplicator, "should_deliver", deliver_every_copy)


class TestCheckSpec:
    def test_round_trip(self):
        spec = CheckSpec(sample_interval=100.0, fifo=False, strict=True,
                         max_violations=5)
        again = CheckSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            CheckSpec.from_dict({"sample_interval": 100.0, "bogus": 1})

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            CheckSpec(sample_interval=0.0).validate()

    def test_bad_max_violations_rejected(self):
        with pytest.raises(ValueError):
            CheckSpec(max_violations=0).validate()


class TestInvariantEngine:
    def test_null_singleton_is_disabled(self):
        assert NullInvariants.enabled is False
        NullInvariants.on_deliver(None)  # all hooks are no-ops

    def test_clean_run_checks_every_family(self):
        res = run_scenario(fast_config(policy="redundant2"),
                           check=CheckSpec(sample_interval=250.0))
        rep = res.check_report
        assert rep["ok"] is True
        assert rep["violation_count"] == 0
        assert rep["first_violation"] is None
        assert rep["samples"] > 0
        for name in ("conservation", "dedup", "fifo", "flow_order",
                     "control", "clock"):
            assert rep["invariants"][name] > 0, name

    def test_report_is_schema_versioned(self):
        res = run_scenario(fast_config(), check=True)
        assert repro.schemas.validate(res.check_report) == "check_report"

    def test_armed_run_identical_to_detached(self):
        cfg = fast_config()
        detached = run_scenario(cfg).to_dict()
        armed = run_scenario(cfg, check=True).to_dict()
        armed.pop("check_report")
        assert deep_diff(detached, armed) == []

    def test_fault_scenario_stays_clean(self):
        from repro.faults import FaultSchedule

        sched = FaultSchedule().crash(0, at=800.0, duration=600.0)
        res = run_scenario(fast_config(faults=sched), check=True)
        assert res.check_report["ok"] is True

    def test_broken_dedup_caught(self, broken_dedup):
        res = run_scenario(fast_config(policy="redundant2"),
                           check=True, recycle=False)
        rep = res.check_report
        assert rep["ok"] is False
        first = rep["first_violation"]
        assert first["invariant"] == "dedup"
        assert "delivered twice" in first["message"]
        assert first["pid"] >= 0
        assert rep["violations"][0] == first

    def test_strict_mode_raises(self, broken_dedup):
        with pytest.raises(InvariantViolation, match="dedup"):
            run_scenario(fast_config(policy="redundant2"),
                         check=CheckSpec(strict=True), recycle=False)

    def test_max_violations_caps_recording(self, broken_dedup):
        res = run_scenario(fast_config(policy="redundant2"),
                           check=CheckSpec(max_violations=3), recycle=False)
        rep = res.check_report
        assert len(rep["violations"]) == 3
        assert rep["violation_count"] > 3  # counted past the cap

    def test_engine_rejects_reuse(self):
        engine = InvariantEngine(CheckSpec())
        run_scenario(fast_config(), check=engine)
        with pytest.raises(ValueError):
            run_scenario(fast_config(), check=engine)

    def test_run_scenario_rejects_bad_check(self):
        with pytest.raises(ValueError, match="check"):
            run_scenario(fast_config(), check="yes")


class TestSelftest:
    def test_mutation_selftest_passes(self):
        report = mutation_selftest()
        assert report["ok"] is True
        assert report["violation_caught"] is True
        assert report["first_violation"]["invariant"] == "dedup"
        assert report["drift_detected"] is True
        assert report["intact_clean"] is True


class TestFuzz:
    def test_generated_configs_are_valid_and_deterministic(self):
        import numpy as np

        a = [generate_config(np.random.default_rng(3)).to_dict()
             for _ in range(5)]
        b = [generate_config(np.random.default_rng(3)).to_dict()
             for _ in range(5)]
        assert a == b
        policies = {c["policy"] for c in a}
        assert policies  # validated configs, drawn across the registry

    def test_clean_fuzz_run(self):
        report = fuzz_scenarios(cases=2, seed=11)
        assert report["ok"] is True
        assert report["cases"] == 2
        assert report["failures"] == []
        assert repro.schemas.validate(report) == "fuzz_report"

    def test_cases_must_be_positive(self):
        with pytest.raises(ValueError):
            fuzz_scenarios(cases=0)

    def test_fuzz_catches_mutant_and_writes_repro(self, broken_dedup,
                                                  tmp_path, monkeypatch):
        # Force every generated case onto the replication policy so the
        # broken dedup is reachable, and disable recycling (both copies
        # of a packet reach the sink under the mutation).
        import repro.check.fuzz as fuzz_mod

        def armed_no_recycle(config, sample_interval=250.0):
            config = dataclasses.replace(config, policy="redundant2",
                                         n_paths=max(2, config.n_paths))
            engine = InvariantEngine(CheckSpec(sample_interval=sample_interval))
            return run_scenario(config, check=engine,
                                recycle=False).check_report

        monkeypatch.setattr(fuzz_mod, "run_armed", armed_no_recycle)
        report = fuzz_scenarios(cases=1, seed=0, out_dir=str(tmp_path),
                                shrink=False)
        assert report["ok"] is False
        failure = report["failures"][0]
        assert failure["first_violation"]["invariant"] == "dedup"
        with open(failure["repro_path"]) as fh:
            ScenarioConfig.from_dict(json.load(fh))  # loadable repro

    def test_shrinker_minimizes_while_violating(self, broken_dedup):
        from repro.faults import FaultSchedule

        cfg = fast_config(policy="redundant2", n_paths=4, chain="heavy",
                          traffic="onoff", n_flows=48, load=0.7,
                          duration=4000.0,
                          faults=FaultSchedule().hang(0, at=1000.0,
                                                      duration=800.0))
        # Patch recycling off for the armed shrink runs (see above).
        minimal = shrink_config(cfg, sample_interval=500.0, budget=8)
        assert minimal.faults is None
        assert minimal.chain == "basic"
        assert minimal.traffic == "poisson"
        assert minimal.n_flows <= cfg.n_flows


class TestDeepDiff:
    def test_identical(self):
        obj = {"a": [1, 2.5, {"b": float("nan")}], "c": "x"}
        assert deep_diff(obj, json.loads(json.dumps(obj))) == []

    def test_leaf_paths_named(self):
        diffs = deep_diff({"a": {"b": [1, 2]}}, {"a": {"b": [1, 3]}})
        assert diffs == ["a.b[1]: 2 != 3"]

    def test_missing_keys(self):
        diffs = deep_diff({"a": 1}, {"b": 1})
        assert "a: missing on right" in diffs
        assert "b: missing on left" in diffs

    def test_length_mismatch(self):
        assert deep_diff([1], [1, 2]) == ["<root>: length 1 != 2"]

    def test_int_float_compare_numerically(self):
        assert deep_diff({"x": 1}, {"x": 1.0}) == []
        assert deep_diff({"x": True}, {"x": 1}) != []

    def test_nan_equal_but_values_exact(self):
        nan = float("nan")
        assert deep_diff([nan], [nan]) == []
        assert deep_diff([1.0], [1.0 + 1e-12]) != []

    def test_capped(self):
        from repro.check.diff import MAX_DIFFS

        diffs = deep_diff(list(range(100)), list(range(1, 101)))
        assert len(diffs) == MAX_DIFFS


class TestDiffScenario:
    def test_all_variants_identical(self):
        report = diff_scenario(fast_config(), jobs=2)
        assert report["all_identical"] is True
        assert report["skipped"] == {"faults_kwarg":
                                     "config has no fault schedule"}
        for name in ("telemetry", "recycle_off", "check_armed", "jobs"):
            assert report["variants"][name]["identical"] is True
        assert repro.schemas.validate(report) == "diff_report"

    def test_variant_subset(self):
        report = diff_scenario(fast_config(), variants=["recycle_off"])
        assert list(report["variants"]) == ["recycle_off"]

    def test_faults_kwarg_variant(self):
        from repro.faults import FaultSchedule

        cfg = fast_config(faults=FaultSchedule().hang(0, at=900.0,
                                                      duration=500.0))
        report = diff_scenario(cfg, variants=["faults_kwarg"])
        assert report["variants"]["faults_kwarg"]["identical"] is True


class TestRunOptions:
    def test_options_equivalent_to_legacy_kwargs(self):
        from repro.slo import SloSpec

        spec = SloSpec(objectives=("p99 <= 2000us",), window=1000.0)
        cfg = fast_config()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = repro.run(cfg, slo=spec)
        modern = repro.run(cfg, RunOptions(slo=spec))
        assert deep_diff(legacy.to_dict(), modern.to_dict()) == []

    def test_legacy_kwargs_warn_once(self):
        repro._run_kwargs_warned = False
        try:
            with pytest.warns(DeprecationWarning, match="RunOptions"):
                repro.run(fast_config(), slo=None, faults=None,
                          telemetry=repro.Telemetry())
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                repro.run(fast_config(), telemetry=repro.Telemetry())
        finally:
            repro._run_kwargs_warned = True

    def test_positional_non_options_rejected(self):
        with pytest.raises(TypeError, match="RunOptions"):
            repro.run(fast_config(), {"telemetry": None})

    def test_field_set_both_places_rejected(self):
        from repro.faults import FaultSchedule

        sched = FaultSchedule().crash(0, at=500.0, duration=400.0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="faults"):
                repro.run(fast_config(), RunOptions(faults=sched),
                          faults=sched)

    def test_faults_on_config_and_options_rejected(self):
        from repro.faults import FaultSchedule

        sched = FaultSchedule().crash(0, at=500.0, duration=400.0)
        with pytest.raises(ValueError, match="set it once"):
            repro.run(fast_config(faults=sched), RunOptions(faults=sched))

    def test_check_spec_resolution(self):
        assert RunOptions().check_spec() is None
        assert RunOptions(check=False).check_spec() is None
        assert RunOptions(check=True).check_spec() == CheckSpec()
        spec = CheckSpec(sample_interval=100.0)
        assert RunOptions(check=spec).check_spec() is spec
        with pytest.raises(ValueError):
            RunOptions(check="yes").check_spec()

    def test_check_via_run_options(self):
        res = repro.run(fast_config(), RunOptions(check=True))
        assert res.check_report["ok"] is True
        assert "check_report" in res.to_dict()


class TestSweepCheck:
    def test_checked_sweep_bypasses_cache_and_reports(self, tmp_path):
        from repro.sweep import Axis, SweepSpec, run_sweep

        spec = SweepSpec(
            name="check-test",
            base=fast_config().to_dict(),
            axes=[Axis("policy", ["single", "redundant2"])],
        )
        sr = run_sweep(spec, jobs=1, cache_dir=str(tmp_path), check=True)
        assert sr.cache_hits == 0
        for cell in sr.cells:
            assert cell.check_report["ok"] is True
            assert "check_report" not in cell.identity_dict()
        # A second checked run still simulates (no cached check payloads).
        sr2 = run_sweep(spec, jobs=1, cache_dir=str(tmp_path), check=True)
        assert sr2.cache_hits == 0
