"""Tests for PathQueue and PhysicalNic."""

import pytest

from repro.dataplane import PathQueue, PhysicalNic, rss_hash
from repro.net.packet import FiveTuple


class TestPathQueue:
    def test_fifo_order(self, sim, mk_packet):
        q = PathQueue(sim)
        pkts = [mk_packet(seq=i) for i in range(5)]
        for p in pkts:
            q.push(p)
        assert [q.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_enqueue_stamps_time(self, sim, mk_packet):
        q = PathQueue(sim)
        p = mk_packet()
        sim.call_at(7.0, q.push, p)
        sim.run()
        assert p.t_enq == 7.0

    def test_packet_capacity_drop_tail(self, sim, mk_packet):
        q = PathQueue(sim, capacity_pkts=2)
        assert q.push(mk_packet())
        assert q.push(mk_packet())
        over = mk_packet()
        assert not q.push(over)
        assert over.dropped and "overflow" in over.dropped
        assert q.dropped == 1

    def test_byte_capacity(self, sim, mk_packet):
        q = PathQueue(sim, capacity_pkts=100, capacity_bytes=1000)
        assert q.push(mk_packet(size=600))
        assert not q.push(mk_packet(size=600))
        assert q.push(mk_packet(size=400))
        assert q.bytes == 1000

    def test_pop_batch(self, sim, mk_packet):
        q = PathQueue(sim)
        for i in range(5):
            q.push(mk_packet(seq=i))
        batch = q.pop_batch(3)
        assert [p.seq for p in batch] == [0, 1, 2]
        assert len(q) == 2
        assert len(q.pop_batch(10)) == 2
        assert q.pop_batch(4) == []

    def test_byte_occupancy_tracks_pops(self, sim, mk_packet):
        q = PathQueue(sim)
        q.push(mk_packet(size=100))
        q.push(mk_packet(size=200))
        q.pop()
        assert q.bytes == 200

    def test_on_enqueue_hook(self, sim, mk_packet):
        q = PathQueue(sim)
        calls = []
        q.on_enqueue = lambda: calls.append(len(q))
        q.push(mk_packet())
        assert calls == [1]

    def test_hook_not_called_on_drop(self, sim, mk_packet):
        q = PathQueue(sim, capacity_pkts=1)
        q.push(mk_packet())
        calls = []
        q.on_enqueue = lambda: calls.append(1)
        q.push(mk_packet())
        assert calls == []

    def test_head_wait(self, sim, mk_packet):
        q = PathQueue(sim)
        assert q.head_wait(10.0) == 0.0
        p = mk_packet()
        q.push(p)  # at t=0
        assert q.head_wait(25.0) == 25.0

    def test_peak_occupancy(self, sim, mk_packet):
        q = PathQueue(sim)
        for _ in range(3):
            q.push(mk_packet())
        q.pop()
        q.push(mk_packet())
        assert q.peak_occupancy == 3

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            PathQueue(sim, capacity_pkts=0)
        with pytest.raises(ValueError):
            PathQueue(sim, capacity_bytes=0)


class TestRssHash:
    def test_deterministic(self):
        ft = FiveTuple(1, 2, 3, 4)
        assert rss_hash(ft, 8) == rss_hash(ft, 8)

    def test_in_range_and_spreads(self):
        buckets = {rss_hash(FiveTuple(1, 2, sp, 80), 4) for sp in range(100)}
        assert buckets <= {0, 1, 2, 3}
        assert len(buckets) == 4


class TestPhysicalNic:
    def test_stamps_t_nic_and_dispatches(self, sim, mk_packet):
        got = []
        nic = PhysicalNic(sim, got.append, rx_cost=0.1)
        p = mk_packet()
        sim.call_at(5.0, nic.on_wire, p)
        sim.run()
        assert p.t_nic == 5.0
        assert got == [p]

    def test_rx_cost_serializes(self, sim, mk_packet):
        times = []
        nic = PhysicalNic(sim, lambda p: times.append(sim.now), rx_cost=1.0)
        for _ in range(3):
            nic.on_wire(mk_packet())
        sim.run()
        assert times == [1.0, 2.0, 3.0]

    def test_ring_overflow_drops(self, sim, mk_packet):
        nic = PhysicalNic(sim, lambda p: None, ring_size=2, rx_cost=10.0)
        kept = [mk_packet() for _ in range(2)]
        for p in kept:
            nic.on_wire(p)
        over = mk_packet()
        nic.on_wire(over)
        assert over.dropped and "ring-overflow" in over.dropped
        assert nic.dropped == 1 and nic.received == 2
        sim.run()

    def test_idle_then_busy_again(self, sim, mk_packet):
        times = []
        nic = PhysicalNic(sim, lambda p: times.append(sim.now), rx_cost=1.0)
        nic.on_wire(mk_packet())
        sim.call_at(100.0, nic.on_wire, mk_packet())
        sim.run()
        assert times == [1.0, 101.0]

    def test_invalid_params(self, sim):
        with pytest.raises(ValueError):
            PhysicalNic(sim, lambda p: None, ring_size=0)
        with pytest.raises(ValueError):
            PhysicalNic(sim, lambda p: None, rx_cost=-1)
