"""Tests for flowlet tracking and the straggler detector."""

import pytest

from repro.core import FlowletTable, StragglerDetector
from repro.core.detector import DetectorConfig
from repro.dataplane.path import DataPath, PathConfig
from repro.elements import Chain, Delay


class TestFlowletTable:
    def test_new_flow_is_boundary(self):
        t = FlowletTable(timeout=100.0)
        assert t.lookup(1, 0.0) is None
        assert t.boundaries == 1

    def test_within_timeout_returns_path(self):
        t = FlowletTable(timeout=100.0)
        t.lookup(1, 0.0)
        t.assign(1, 3, 0.0)
        assert t.lookup(1, 50.0) == 3
        assert t.hits == 1

    def test_gap_beyond_timeout_is_boundary(self):
        t = FlowletTable(timeout=100.0)
        t.assign(1, 3, 0.0)
        assert t.lookup(1, 150.0) is None
        assert t.boundaries == 1

    def test_lookup_refreshes_last_seen(self):
        t = FlowletTable(timeout=100.0)
        t.assign(1, 2, 0.0)
        assert t.lookup(1, 90.0) == 2      # refresh at 90
        assert t.lookup(1, 180.0) == 2     # 90 µs since refresh -> still live

    def test_exact_timeout_still_live(self):
        t = FlowletTable(timeout=100.0)
        t.assign(1, 2, 0.0)
        assert t.lookup(1, 100.0) == 2

    def test_current_path_peek_no_refresh(self):
        t = FlowletTable(timeout=100.0)
        t.assign(1, 4, 0.0)
        assert t.current_path(1) == 4
        assert t.current_path(99) is None

    def test_gc_removes_stale(self):
        t = FlowletTable(timeout=10.0, gc_age=100.0)
        t.assign(1, 0, 0.0)
        t.assign(2, 0, 95.0)
        assert t.gc(now=150.0) == 1
        assert len(t) == 1

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            FlowletTable(timeout=-1.0)


def mk_paths(sim, rng, n=3, cost=1.0):
    return [
        DataPath(sim, i, Chain([Delay("d", base_cost=cost)]), lambda p: None,
                 rng=rng, config=PathConfig(batch_size=1))
        for i in range(n)
    ]


class TestStragglerDetector:
    def test_all_healthy_when_idle(self, sim, rng):
        det = StragglerDetector()
        paths = mk_paths(sim, rng)
        health = det.evaluate(paths, 0.0)
        assert all(h.healthy for h in health)

    def test_hol_wait_trips(self, sim, rng, mk_packet):
        det = StragglerDetector(DetectorConfig(hol_threshold=50.0))
        paths = mk_paths(sim, rng)
        # Stuff a packet into path 1's queue without letting it serve.
        p = mk_packet()
        p.t_enq = 0.0
        paths[1].queue._q.append(p)
        health = det.evaluate(paths, 100.0)
        assert not health[1].healthy
        assert "hol_wait" in health[1].reason
        assert health[0].healthy and health[2].healthy

    def test_ewma_rule_needs_floor(self, sim, rng):
        det = StragglerDetector(DetectorConfig(ewma_factor=2.0, ewma_floor=30.0))
        paths = mk_paths(sim, rng)
        # Sub-floor EWMAs must NOT trip even with a 10x ratio.
        paths[0].ewma_latency.add(1.0)
        paths[1].ewma_latency.add(10.0)
        paths[2].ewma_latency.add(1.0)
        assert all(h.healthy for h in det.evaluate(paths, 0.0))
        # Above the floor the relative rule applies.
        paths[1].ewma_latency._value = 500.0
        paths[0].ewma_latency._value = 50.0
        paths[2].ewma_latency._value = 50.0
        health = det.evaluate(paths, 0.0)
        assert not health[1].healthy
        assert "ewma" in health[1].reason

    def test_depth_rule(self, sim, rng, mk_packet):
        det = StragglerDetector(DetectorConfig(depth_factor=2.0))
        paths = mk_paths(sim, rng)
        for i in range(20):
            pkt = mk_packet(seq=i)
            pkt.t_enq = 0.0
            paths[2].queue._q.append(pkt)
        health = det.evaluate(paths, 1.0)  # hol small at t=1
        assert not health[2].healthy
        assert "depth" in health[2].reason

    def test_at_least_one_path_forced_healthy(self, sim, rng, mk_packet):
        det = StragglerDetector(DetectorConfig(hol_threshold=1.0))
        paths = mk_paths(sim, rng)
        for path in paths:
            p = mk_packet()
            p.t_enq = 0.0
            path.queue._q.append(p)
        health = det.evaluate(paths, 1000.0)
        assert sum(h.healthy for h in health) == 1
        assert "forced" in next(h for h in health if h.healthy).reason

    def test_healthy_ids_helper(self, sim, rng):
        det = StragglerDetector()
        paths = mk_paths(sim, rng)
        assert det.healthy_ids(paths, 0.0) == [0, 1, 2]

    def test_verdict_counter(self, sim, rng, mk_packet):
        det = StragglerDetector(DetectorConfig(hol_threshold=10.0))
        paths = mk_paths(sim, rng)
        p = mk_packet()
        p.t_enq = 0.0
        paths[0].queue._q.append(p)
        det.evaluate(paths, 100.0)
        assert det.straggler_verdicts == 1
        assert det.evaluations == 1

    def test_stale_ewma_does_not_brand_idle_path(self, sim, rng):
        """Regression: an idle path with an old bad EWMA must recover.

        Without the staleness guard, "unhealthy" is absorbing -- the
        branded path gets no traffic, its EWMA never updates, and it
        never rejoins (observed after noisy-neighbor departure)."""
        det = StragglerDetector(DetectorConfig(ewma_staleness=1_000.0))
        paths = mk_paths(sim, rng)
        paths[0].ewma_latency._value = 50.0
        paths[1].ewma_latency._value = 500.0  # bad, but old
        paths[2].ewma_latency._value = 50.0
        paths[1].last_completion = 0.0
        # Evidence fresh (within staleness window): branded.
        health = det.evaluate(paths, 500.0)
        assert not health[1].healthy
        # Evidence stale and queue empty: give it another chance.
        health = det.evaluate(paths, 5_000.0)
        assert health[1].healthy

    def test_backlogged_path_with_bad_ewma_still_branded(self, sim, rng, mk_packet):
        det = StragglerDetector(DetectorConfig(ewma_staleness=1_000.0))
        paths = mk_paths(sim, rng)
        paths[0].ewma_latency._value = 50.0
        paths[1].ewma_latency._value = 500.0
        paths[2].ewma_latency._value = 50.0
        paths[1].last_completion = 0.0
        pkt = mk_packet()
        pkt.t_enq = 4_999.0
        paths[1].queue._q.append(pkt)  # standing backlog keeps evidence live
        health = det.evaluate(paths, 5_000.0)
        assert not health[1].healthy

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(ewma_factor=0.5)
        with pytest.raises(ValueError):
            DetectorConfig(hol_threshold=0.0)
        with pytest.raises(ValueError):
            DetectorConfig(ewma_staleness=0.0)
