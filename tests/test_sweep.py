"""Sweep subsystem tests: spec expansion, serialization round-trips,
parallel/serial bit-identity, cache-hit identity, and seed derivation.

The determinism contract under test is the headline one: a sweep's
per-cell results are a pure function of the spec -- the same whether the
sweep runs serially, across a worker pool, twice in a row, or out of the
content-hash cache.
"""

import json

import pytest

import repro
from repro.bench.scenarios import ScenarioConfig
from repro.sweep import (
    Axis,
    ResultCache,
    SweepResult,
    SweepSpec,
    canonical_json,
    coerce_field_value,
    derive_seed,
    run_sweep,
)

#: A fast base: tiny durations keep each cell ~0.1 s.
TINY = dict(chain="basic", duration=2_000.0, warmup=300.0, drain=2_000.0,
            n_flows=32)


def tiny_spec(**kw):
    defaults = dict(
        name="test-sweep",
        base=dict(TINY),
        axes=[Axis("load", [0.3, 0.6]), Axis("policy", ["single", "adaptive"])],
    )
    defaults.update(kw)
    return SweepSpec(**defaults)


class TestSpecExpansion:
    def test_row_major_order_and_cell_count(self):
        spec = tiny_spec()
        assert spec.n_cells == 4
        cells = spec.expand()
        assert [c.params for c in cells] == [
            {"load": 0.3, "policy": "single"},
            {"load": 0.3, "policy": "adaptive"},
            {"load": 0.6, "policy": "single"},
            {"load": 0.6, "policy": "adaptive"},
        ]
        assert [c.index for c in cells] == [0, 1, 2, 3]

    def test_single_policy_gets_one_path(self):
        cells = tiny_spec().expand()
        by_policy = {c.params["policy"]: c.config_dict for c in cells}
        assert by_policy["single"]["n_paths"] == 1
        assert by_policy["adaptive"]["n_paths"] == 4

    def test_single_path_baseline_off(self):
        cells = tiny_spec(single_path_baseline=False).expand()
        assert all(c.config_dict["n_paths"] == 4 for c in cells)

    def test_dict_values_couple_fields(self):
        spec = tiny_spec(axes=[
            Axis("k", [{"n_paths": k, "load": 0.8 / k} for k in (1, 2)],
                 labels=[1, 2]),
        ])
        cells = spec.expand()
        assert cells[0].params == {"k": 1}
        assert cells[0].config_dict["n_paths"] == 1
        assert cells[0].config_dict["load"] == 0.8
        assert cells[1].config_dict["load"] == 0.4

    def test_bad_field_fails_at_expand(self):
        spec = tiny_spec(axes=[Axis("frobnicate", [1, 2])])
        with pytest.raises(ValueError, match="frobnicate"):
            spec.expand()

    def test_bad_value_fails_at_expand(self):
        spec = tiny_spec(axes=[Axis("policy", ["single", "warp-drive"])])
        with pytest.raises(ValueError, match="warp-drive"):
            spec.expand()

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            tiny_spec(axes=[Axis("load", [0.1]), Axis("load", [0.2])])

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            Axis("load", [0.1, 0.2], labels=["a"])

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Axis("load", [])


class TestSeedDerivation:
    def test_fixed_mode_shares_base_seed(self):
        cells = tiny_spec(base=dict(TINY, seed=77)).expand()
        assert {c.config_dict["seed"] for c in cells} == {77}

    def test_derived_mode_distinct_and_stable(self):
        spec = tiny_spec(base=dict(TINY, seed=77), seed_mode="derived")
        seeds = [c.config_dict["seed"] for c in spec.expand()]
        assert len(set(seeds)) == 4  # distinct per cell
        assert seeds == [c.config_dict["seed"] for c in spec.expand()]

    def test_derived_seed_survives_axis_growth(self):
        small = tiny_spec(seed_mode="derived",
                          axes=[Axis("load", [0.3]),
                                Axis("policy", ["single", "adaptive"])])
        big = tiny_spec(seed_mode="derived",
                        axes=[Axis("load", [0.3, 0.6]),
                              Axis("policy", ["single", "adaptive"])])
        small_seeds = {canonical_json(c.params): c.config_dict["seed"]
                       for c in small.expand()}
        big_seeds = {canonical_json(c.params): c.config_dict["seed"]
                     for c in big.expand()}
        for coords, seed in small_seeds.items():
            assert big_seeds[coords] == seed

    def test_derive_seed_is_31_bit(self):
        s = derive_seed(42, {"policy": "adaptive", "load": 0.7})
        assert 0 <= s < 2**31

    def test_bad_seed_mode_rejected(self):
        with pytest.raises(ValueError, match="seed_mode"):
            tiny_spec(seed_mode="chaotic")


class TestSpecSerialization:
    def test_round_trip_through_json(self):
        spec = tiny_spec(seed_mode="derived", single_path_baseline=False)
        data = json.loads(json.dumps(spec.to_dict()))
        back = SweepSpec.from_dict(data)
        assert back.to_dict() == spec.to_dict()
        assert [c.config_dict for c in back.expand()] == \
               [c.config_dict for c in spec.expand()]

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown SweepSpec"):
            SweepSpec.from_dict({"name": "x", "axs": []})

    def test_cli_value_coercion(self):
        assert coerce_field_value("load", "0.7") == 0.7
        assert coerce_field_value("n_paths", "4") == 4
        assert coerce_field_value("policy", "adaptive") == "adaptive"
        assert coerce_field_value("faults", "null") is None
        with pytest.raises(ValueError, match="frobnicate"):
            coerce_field_value("frobnicate", "1")
        with pytest.raises(ValueError, match="number"):
            coerce_field_value("load", "heavy")


class TestRunSweepDeterminism:
    def test_twice_and_across_jobs_bit_identical(self, tmp_path):
        spec = tiny_spec()
        serial = run_sweep(spec, jobs=1, cache=False)
        again = run_sweep(spec, jobs=1, cache=False)
        pooled = run_sweep(spec, jobs=4, cache=False)
        assert serial.identity() == again.identity() == pooled.identity()
        assert pooled.jobs >= 1
        assert [c.index for c in pooled.cells] == [0, 1, 2, 3]

    def test_cache_hit_returns_identical_artifact(self, tmp_path):
        spec = tiny_spec()
        cold = run_sweep(spec, jobs=1, cache=True, cache_dir=str(tmp_path))
        warm = run_sweep(spec, jobs=1, cache=True, cache_dir=str(tmp_path))
        assert cold.cache_misses == 4 and cold.cache_hits == 0
        assert warm.cache_hits == 4 and warm.cache_misses == 0
        assert all(c.cached for c in warm.cells)
        assert warm.identity() == cold.identity()

    def test_partial_sweep_is_incremental(self, tmp_path):
        small = tiny_spec(axes=[Axis("load", [0.3]),
                                Axis("policy", ["single", "adaptive"])])
        run_sweep(small, jobs=1, cache=True, cache_dir=str(tmp_path))
        grown = run_sweep(tiny_spec(), jobs=1, cache=True,
                          cache_dir=str(tmp_path))
        assert grown.cache_hits == 2 and grown.cache_misses == 2

    def test_cache_key_tracks_config_content(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        a = cache.key_for(ScenarioConfig(**TINY).to_dict())
        b = cache.key_for(ScenarioConfig(**dict(TINY, load=0.9)).to_dict())
        assert a != b
        assert cache.key_for(ScenarioConfig(**TINY).to_dict()) == a

    def test_progress_reports_every_cell(self):
        seen = []
        run_sweep(tiny_spec(), jobs=1, cache=False,
                  progress=lambda done, total, cell: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


class TestSweepResult:
    @pytest.fixture(scope="class")
    def sr(self):
        return run_sweep(tiny_spec(), jobs=1, cache=False)

    def test_get_by_coordinates(self, sr):
        cell = sr.get(load=0.6, policy="adaptive")
        assert cell.config["load"] == 0.6
        assert cell.summary.count > 0
        assert cell.exact["p99"] > 0

    def test_get_ambiguous_or_missing_raises(self, sr):
        with pytest.raises(KeyError):
            sr.get(policy="adaptive")  # two loads match
        with pytest.raises(KeyError):
            sr.get(policy="warp-drive")

    def test_artifact_round_trip(self, sr, tmp_path):
        path = tmp_path / "sweep.json"
        sr.save(path)
        back = SweepResult.load(path)
        assert back.identity() == sr.identity()
        assert back.accounting()["cells"] == 4

    def test_accounting_shape(self, sr):
        acct = sr.accounting()
        assert acct["cells"] == 4
        assert acct["cell_wall_s"] > 0
        assert acct["cache_misses"] == 4


class TestPublicRun:
    def test_run_with_overrides(self):
        res = repro.run(**TINY, load=0.4)
        assert res.stats["delivered"] > 0
        assert res.config.load == 0.4

    def test_run_with_config_and_overrides(self):
        cfg = ScenarioConfig(**TINY)
        res = repro.run(cfg, seed=9)
        assert res.config.seed == 9
        assert cfg.seed == 42  # original untouched

    def test_run_validates(self):
        with pytest.raises(ValueError, match="unknown policy"):
            repro.run(policy="warp-drive")

    def test_result_round_trips(self):
        res = repro.run(**TINY, load=0.4)
        data = json.loads(json.dumps(res.to_dict()))
        back = repro.SimulationResult.from_dict(data)
        assert back.summary == res.summary
        assert back.exact_percentile(99) == res.exact_percentile(99)
        assert back.goodput_gbps() == res.goodput_gbps()
        assert back.to_dict() == data
