"""Tests for statistical comparison helpers and multi-seed replication."""

import math

import numpy as np
import pytest

from repro.bench import ScenarioConfig
from repro.bench.runner import replicate
from repro.dataplane.vcpu import JitterParams, SHARED_CORE
from repro.metrics.compare import (
    bootstrap_percentile_ci,
    improvement_significant,
    percentile_ratio_ci,
)


class TestBootstrapCi:
    def test_point_inside_interval(self):
        rng = np.random.default_rng(1)
        s = rng.exponential(10, 5000)
        point, lo, hi = bootstrap_percentile_ci(s, 99)
        assert lo <= point <= hi

    def test_interval_shrinks_with_samples(self):
        rng = np.random.default_rng(2)
        small = rng.exponential(10, 200)
        big = rng.exponential(10, 20_000)
        _, lo_s, hi_s = bootstrap_percentile_ci(small, 95)
        _, lo_b, hi_b = bootstrap_percentile_ci(big, 95)
        assert (hi_b - lo_b) < (hi_s - lo_s)

    def test_covers_true_quantile(self):
        # Exponential(1): true p90 = ln(10).
        rng = np.random.default_rng(3)
        s = rng.exponential(1.0, 10_000)
        _, lo, hi = bootstrap_percentile_ci(s, 90)
        assert lo < math.log(10) < hi

    def test_empty_and_validation(self):
        point, lo, hi = bootstrap_percentile_ci(np.array([]), 99)
        assert math.isnan(point)
        with pytest.raises(ValueError):
            bootstrap_percentile_ci(np.ones(10), 99, confidence=1.5)

    def test_deterministic_given_seed(self):
        s = np.random.default_rng(4).exponential(5, 1000)
        assert bootstrap_percentile_ci(s, 99, seed=7) == bootstrap_percentile_ci(s, 99, seed=7)


class TestRatioCi:
    def test_clear_improvement_detected(self):
        rng = np.random.default_rng(5)
        baseline = rng.exponential(100, 5000)
        candidate = rng.exponential(10, 5000)
        point, lo, hi = percentile_ratio_ci(baseline, candidate, 99)
        assert lo > 1.0
        assert 5 < point < 20
        assert improvement_significant(baseline, candidate, 99)

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(6)
        a = rng.exponential(10, 5000)
        b = rng.exponential(10, 5000)
        assert not improvement_significant(a, b, 95)

    def test_regression_not_significant_improvement(self):
        rng = np.random.default_rng(7)
        baseline = rng.exponential(10, 3000)
        worse = rng.exponential(50, 3000)
        assert not improvement_significant(baseline, worse, 95)


class TestReplicate:
    def _cfg(self):
        return ScenarioConfig(chain="basic", load=0.4, duration=5_000.0,
                              warmup=1_000.0, jitter=JitterParams(), n_flows=32)

    def test_runs_n_seeds(self):
        out = replicate(self._cfg(), n_seeds=3)
        assert len(out["values"]) == 3
        assert out["min"] <= out["mean"] <= out["max"]

    def test_seeds_actually_vary(self):
        out = replicate(
            ScenarioConfig(chain="basic", load=0.5, duration=8_000.0,
                           warmup=1_000.0, jitter=SHARED_CORE, n_flows=32),
            n_seeds=3,
        )
        assert len(set(out["values"])) > 1

    def test_custom_metric(self):
        out = replicate(self._cfg(), n_seeds=2,
                        metric=lambda r: float(r.stats["delivered"]))
        assert all(v > 0 for v in out["values"])

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(self._cfg(), n_seeds=0)


class TestCrossSeedClaim:
    def test_multipath_gain_holds_across_seeds(self):
        """The headline F3 claim, checked across 3 seeds: adaptive p99
        improves on the seed-paired single-path p99 every time, and the
        mean improvement is well clear of seed noise."""
        base = ScenarioConfig(chain="heavy", load=0.7, duration=25_000.0,
                              warmup=5_000.0, jitter=SHARED_CORE)
        import dataclasses

        singles = replicate(dataclasses.replace(base, policy="single", n_paths=1),
                            n_seeds=3)
        multis = replicate(dataclasses.replace(base, policy="adaptive", n_paths=4),
                           n_seeds=3)
        for m, s_v in zip(multis["values"], singles["values"]):
            assert m < s_v
        assert multis["mean"] < 0.6 * singles["mean"]
