"""Tests for the reorder buffer and replication/dedup."""

import pytest

from repro.core import Deduplicator, ReorderBuffer, Replicator
from repro.net.packet import PacketFactory


class TestReorderBuffer:
    def mk(self, sim, timeout=100.0):
        delivered = []
        rb = ReorderBuffer(sim, delivered.append, timeout=timeout)
        return rb, delivered

    def test_in_order_passthrough(self, sim, mk_packet):
        rb, out = self.mk(sim)
        pkts = [mk_packet(seq=i) for i in range(4)]
        for p in pkts:
            rb.on_packet(p)
        assert [p.seq for p in out] == [0, 1, 2, 3]
        assert rb.held == 0

    def test_out_of_order_held_then_released(self, sim, mk_packet):
        rb, out = self.mk(sim)
        p0, p1, p2 = (mk_packet(seq=i) for i in range(3))
        rb.on_packet(p0)
        rb.on_packet(p2)  # held
        assert [p.seq for p in out] == [0]
        assert len(rb) == 1
        rb.on_packet(p1)  # releases 1 then 2
        assert [p.seq for p in out] == [0, 1, 2]
        sim.run()

    def test_flowless_bypass(self, sim, mk_packet):
        rb, out = self.mk(sim)
        p = mk_packet(seq=5, flow_id=-1)
        rb.on_packet(p)
        assert out == [p]

    def test_independent_flows(self, sim, mk_packet):
        rb, out = self.mk(sim)
        a1 = mk_packet(seq=1, flow_id=1)
        b0 = mk_packet(seq=0, flow_id=2)
        rb.on_packet(a1)  # held (flow 1 expects 0)
        rb.on_packet(b0)  # delivered (flow 2 in order)
        assert out == [b0]
        sim.run()  # timeout flush of a1
        assert a1 in out

    def test_timeout_flush_advances(self, sim, mk_packet):
        rb, out = self.mk(sim, timeout=50.0)
        p3 = mk_packet(seq=3)
        rb.on_packet(p3)
        sim.run()
        assert out == [p3]
        assert rb.timeout_flushes == 1
        # After the flush, a late predecessor is delivered immediately.
        p1 = mk_packet(seq=1)
        rb.on_packet(p1)
        assert p1 in out
        assert rb.delivered_late >= 1

    def test_timeout_not_premature(self, sim, mk_packet):
        rb, out = self.mk(sim, timeout=100.0)
        rb.on_packet(mk_packet(seq=1))
        sim.run(until=50.0)
        assert out == []  # still held at t=50

    def test_hold_metrics(self, sim, mk_packet):
        rb, out = self.mk(sim)
        rb.on_packet(mk_packet(seq=1))
        sim.call_at(30.0, rb.on_packet, mk_packet(seq=0))
        sim.run(until=60.0)
        assert rb.held == 1
        assert rb.mean_hold_time() == pytest.approx(30.0)
        assert rb.peak_occupancy == 1

    def test_flush_all_drains(self, sim, mk_packet):
        rb, out = self.mk(sim, timeout=1e9)
        rb.on_packet(mk_packet(seq=5))
        rb.on_packet(mk_packet(seq=7))
        n = rb.flush_all()
        assert n == 2
        assert len(rb) == 0
        assert len(out) == 2

    def test_invalid_timeout(self, sim):
        with pytest.raises(ValueError):
            ReorderBuffer(sim, lambda p: None, timeout=0.0)

    def test_duplicate_seq_after_delivery_counts_late(self, sim, mk_packet):
        rb, out = self.mk(sim)
        rb.on_packet(mk_packet(seq=0))
        rb.on_packet(mk_packet(seq=0))  # duplicate
        assert rb.delivered_late == 1
        assert len(out) == 2


class TestReplicator:
    def test_replicas_have_fresh_pids(self, factory, mk_packet):
        rep = Replicator(factory)
        p = mk_packet()
        copies = rep.replicate(p, 2)
        assert len(copies) == 2
        pids = {p.pid} | {c.pid for c in copies}
        assert len(pids) == 3
        assert all(c.copy_of == p.pid for c in copies)
        assert rep.replicas_created == 2

    def test_zero_copies(self, factory, mk_packet):
        rep = Replicator(factory)
        assert rep.replicate(mk_packet(), 0) == []

    def test_negative_rejected(self, factory, mk_packet):
        rep = Replicator(factory)
        with pytest.raises(ValueError):
            rep.replicate(mk_packet(), -1)


class TestDeduplicator:
    def test_unreplicated_always_delivers(self, mk_packet):
        d = Deduplicator()
        assert d.should_deliver(mk_packet())
        assert d.should_deliver(mk_packet())

    def test_first_copy_wins(self, factory, mk_packet):
        d = Deduplicator()
        rep = Replicator(factory)
        p = mk_packet()
        (copy,) = rep.replicate(p, 1)
        d.register(p, 2)
        assert d.should_deliver(copy) is True   # replica arrives first
        assert d.should_deliver(p) is False     # primary suppressed
        assert d.delivered_first == 1 and d.suppressed == 1
        assert d.outstanding == 0               # fully accounted -> freed

    def test_dropped_copy_accounted(self, factory, mk_packet):
        d = Deduplicator()
        rep = Replicator(factory)
        p = mk_packet()
        (copy,) = rep.replicate(p, 1)
        d.register(p, 2)
        d.on_copy_dropped(copy)
        assert d.should_deliver(p) is True
        assert d.outstanding == 0

    def test_all_copies_dropped_entry_freed(self, factory, mk_packet):
        d = Deduplicator()
        rep = Replicator(factory)
        p = mk_packet()
        (copy,) = rep.replicate(p, 1)
        d.register(p, 2)
        d.on_copy_dropped(p)
        d.on_copy_dropped(copy)
        assert d.outstanding == 0

    def test_double_register_rejected(self, mk_packet):
        d = Deduplicator()
        p = mk_packet()
        d.register(p, 2)
        with pytest.raises(ValueError):
            d.register(p, 2)

    def test_register_needs_two_copies(self, mk_packet):
        d = Deduplicator()
        with pytest.raises(ValueError):
            d.register(mk_packet(), 1)

    def test_three_way_replication(self, factory, mk_packet):
        d = Deduplicator()
        rep = Replicator(factory)
        p = mk_packet()
        c1, c2 = rep.replicate(p, 2)
        d.register(p, 3)
        assert d.should_deliver(c2)
        assert not d.should_deliver(p)
        assert not d.should_deliver(c1)
        assert d.outstanding == 0


class TestReorderEvictionEdges:
    """Eviction-path edges: mid-gap flushes (path ejection drains the
    buffer while predecessors are still missing) and duplicate sequence
    numbers arriving after a flush advanced the flow (a re-steered or
    unparked path replaying in-flight work)."""

    def mk(self, sim, timeout=100.0):
        delivered = []
        rb = ReorderBuffer(sim, delivered.append, timeout=timeout)
        return rb, delivered

    def test_flush_mid_gap_preserves_expected(self, sim, mk_packet):
        # Path ejection drains the buffer while seqs 0-1 are still
        # missing: the held 2 and 3 go out late, but the flow cursor
        # must NOT advance -- the predecessors are in flight on the
        # surviving path and still deserve in-order delivery.
        rb, out = self.mk(sim, timeout=1e9)
        rb.on_packet(mk_packet(seq=2))
        rb.on_packet(mk_packet(seq=3))
        assert rb.flush_all() == 2
        assert [p.seq for p in out] == [2, 3]
        assert rb.delivered_late == 2
        assert len(rb) == 0
        rb.on_packet(mk_packet(seq=0))
        rb.on_packet(mk_packet(seq=1))
        assert [p.seq for p in out] == [2, 3, 0, 1]
        assert rb.delivered_inorder == 2

    def test_flush_mid_gap_hold_accounting(self, sim, mk_packet):
        rb, out = self.mk(sim, timeout=1e9)
        rb.on_packet(mk_packet(seq=4))
        sim.run(until=25.0)
        rb.flush_all()
        assert rb.occupancy == 0
        assert rb.held == 1
        assert rb.mean_hold_time() == pytest.approx(25.0)

    def test_duplicate_seq_after_timeout_flush(self, sim, mk_packet):
        # Timeout flush gave up on the gap and advanced expected past 3;
        # a duplicate 3 (replayed by an unparked path) must go straight
        # out as late, never re-enter the heap.
        rb, out = self.mk(sim, timeout=50.0)
        rb.on_packet(mk_packet(seq=3))
        sim.run()  # deadline fires: expected jumps to 3, then 4
        assert rb.timeout_flushes == 1
        assert [p.seq for p in out] == [3]
        dup = mk_packet(seq=3)
        rb.on_packet(dup)
        assert out[-1] is dup
        assert rb.delivered_late == 1
        assert len(rb) == 0

    def test_duplicate_held_seq_drains_once_late(self, sim, mk_packet):
        # Two copies of seq 5 buffered behind a gap: when the gap fills,
        # the first drains in order, the second drains late -- both are
        # delivered and occupancy returns to zero.
        rb, out = self.mk(sim, timeout=1e9)
        rb.on_packet(mk_packet(seq=0))
        rb.on_packet(mk_packet(seq=5))
        rb.on_packet(mk_packet(seq=5))
        assert len(rb) == 2
        for seq in (1, 2, 3, 4):
            rb.on_packet(mk_packet(seq=seq))
        assert [p.seq for p in out] == [0, 1, 2, 3, 4, 5, 5]
        assert rb.delivered_late == 1
        assert rb.delivered_inorder == 6
        assert len(rb) == 0

    def test_deadline_reschedules_for_next_gap(self, sim, mk_packet):
        # After one timeout flush, a second still-buffered gap must get
        # its own deadline rather than waiting forever.
        rb, out = self.mk(sim, timeout=50.0)
        rb.on_packet(mk_packet(seq=2))
        sim.call_at(30.0, rb.on_packet, mk_packet(seq=10))
        sim.run()
        assert rb.timeout_flushes == 2
        assert [p.seq for p in out] == [2, 10]
        assert len(rb) == 0
