"""Tests for the declarative SLO engine (`repro.slo`).

Covers the objective grammar and spec round-trip, the windowed
attainment tracker, the autotuner's scale-up/scale-down ladders with
hysteresis and blame memory, administrative path parking through the
controller, and the `repro.run(slo=...)` integration surface.
"""

import json
import math

import pytest

import repro
from repro import (
    MpdpConfig,
    MultipathDataPlane,
    RngRegistry,
    ScenarioConfig,
    Simulator,
)
from repro.slo import SloAutotuner, SloObjective, SloSpec


# ----------------------------------------------------------------------
# Objective grammar
# ----------------------------------------------------------------------
class TestSloObjective:
    def test_parse_latency_default_unit_is_us(self):
        o = SloObjective.parse("p99 <= 800")
        assert (o.metric, o.op, o.threshold) == ("p99", "<=", 800.0)

    @pytest.mark.parametrize("text, us", [
        ("p99 <= 800us", 800.0),
        ("p99 <= 1.5ms", 1_500.0),
        ("p99 <= 0.002s", 2_000.0),
        ("mean <= 2e2us", 200.0),
    ])
    def test_parse_unit_normalization(self, text, us):
        assert SloObjective.parse(text).threshold == pytest.approx(us)

    def test_parse_delivery(self):
        o = SloObjective.parse("delivery >= 99.9%")
        assert (o.metric, o.op, o.threshold) == ("delivery", ">=", 99.9)
        # '%' is optional on delivery objectives.
        assert SloObjective.parse("delivery >= 99.9") == o

    def test_canonical_round_trip_is_identity(self):
        for text in ("p50 <= 10us", "p999 <= 2.5ms", "delivery >= 99.99%",
                     "mean <= 100us"):
            o = SloObjective.parse(text)
            assert SloObjective.parse(o.canonical()) == o
            # Canonical form is itself canonical.
            assert SloObjective.parse(o.canonical()).canonical() == o.canonical()

    @pytest.mark.parametrize("bad", [
        "p42 <= 100us",            # unknown metric
        "p99 >= 100us",            # latency must use <=
        "delivery <= 99%",         # delivery must use >=
        "delivery >= 150%",        # out of (0, 100]
        "delivery >= 99ms",        # wrong unit for delivery
        "p99 <= 100%",             # wrong unit for latency
        "p99 <= -5us",             # regex rejects the sign entirely
        "p99 <= us",               # no value
        "gibberish",
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            SloObjective.parse(bad)

    def test_constructor_validates_normalized_values(self):
        with pytest.raises(ValueError):
            SloObjective("p99", "<=", 0.0)
        with pytest.raises(ValueError):
            SloObjective("p99", "<=", float("inf"))
        with pytest.raises(ValueError):
            SloObjective("delivery", ">=", 0.0)

    def test_check_semantics(self):
        lat = SloObjective.parse("p99 <= 100us")
        assert lat.check({"p99": 100.0})          # boundary passes
        assert not lat.check({"p99": 100.1})
        assert lat.check({})                       # missing: vacuously true
        assert lat.check({"p99": float("nan")})    # NaN: vacuously true
        dlv = SloObjective.parse("delivery >= 99%")
        assert dlv.check({"delivery": 99.0})
        assert not dlv.check({"delivery": 98.9})

    def test_ratio_semantics(self):
        lat = SloObjective.parse("p99 <= 200us")
        assert lat.ratio({"p99": 100.0}) == pytest.approx(0.5)
        assert lat.ratio({}) == 0.0
        assert lat.ratio({"p99": float("nan")}) == 0.0
        assert SloObjective.parse("delivery >= 99%").ratio(
            {"delivery": 50.0}) == 0.0


# ----------------------------------------------------------------------
# Spec validation and serialization
# ----------------------------------------------------------------------
class TestSloSpec:
    def test_strings_parse_on_construction(self):
        spec = SloSpec(objectives=("p99 <= 800us", "delivery >= 99.9%"))
        assert all(isinstance(o, SloObjective) for o in spec.objectives)
        assert spec.quantiles() == [0.99]
        assert not spec.wants_mean()

    def test_quantiles_sorted_and_mean_flag(self):
        spec = SloSpec(objectives=("p999 <= 1ms", "p50 <= 20us",
                                   "mean <= 50us"))
        assert spec.quantiles() == [0.50, 0.999]
        assert spec.wants_mean()

    def test_validate_requires_objectives(self):
        with pytest.raises(ValueError, match="at least one objective"):
            SloSpec().validate()

    def test_validate_rejects_duplicate_metric(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloSpec(objectives=("p99 <= 1ms", "p99 <= 2ms")).validate()

    @pytest.mark.parametrize("kwargs", [
        dict(window=0.0),
        dict(min_paths=0),
        dict(min_paths=3, max_paths=2),
        dict(start_paths=0),
        dict(cooldown=-1.0),
        dict(hold_windows=0),
        dict(margin=0.0),
        dict(margin=1.5),
        dict(penalty=-1.0),
        dict(replication_step=0.0),
        dict(replication_max=1.5),
        dict(flowlet_floor=0.0),
    ])
    def test_validate_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            SloSpec(objectives=("p99 <= 1ms",), **kwargs).validate()

    def test_round_trip(self):
        spec = SloSpec(
            objectives=("p99 <= 1.5ms", "delivery >= 99.9%"),
            name="tight", window=2_000.0, autotune=True,
            start_paths=2, cooldown=5_000.0, penalty=15_000.0,
        )
        data = spec.to_dict()
        # Objectives serialize canonically (µs / %), JSON-safe.
        assert data["objectives"] == ["p99 <= 1500us", "delivery >= 99.9%"]
        clone = SloSpec.from_dict(json.loads(json.dumps(data)))
        assert clone == spec
        assert clone.to_dict() == data

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown SloSpec field"):
            SloSpec.from_dict({"objectives": ["p99 <= 1ms"], "windw": 1.0})


# ----------------------------------------------------------------------
# Autotuner unit tests (hand-driven windows, no traffic)
# ----------------------------------------------------------------------
def make_world(n_paths=4, policy="adaptive", controller_interval=500.0):
    sim = Simulator()
    host = MultipathDataPlane(
        sim,
        MpdpConfig(n_paths=n_paths, policy=policy,
                   controller_interval=controller_interval),
        RngRegistry(seed=3),
    )
    return sim, host


def violating(p99=500.0):
    return {"ok": False, "count": 100, "metrics": {"p99": p99},
            "violations": ["p99 <= 100us"]}


def comfortable(p99=10.0):
    return {"ok": True, "count": 100, "metrics": {"p99": p99},
            "violations": []}


class TestSloAutotuner:
    def test_requires_controller(self):
        sim, host = make_world(controller_interval=0.0)
        assert host.controller is None
        with pytest.raises(ValueError, match="PathController"):
            SloAutotuner(sim, SloSpec(objectives=("p99 <= 100us",)), host)

    def test_start_paths_exceeding_n_paths_rejected(self):
        sim, host = make_world(n_paths=2)
        with pytest.raises(ValueError, match="start_paths"):
            SloAutotuner(
                sim, SloSpec(objectives=("p99 <= 100us",), start_paths=3),
                host)

    def test_start_parks_highest_ids(self):
        sim, host = make_world()
        at = SloAutotuner(
            sim, SloSpec(objectives=("p99 <= 100us",), start_paths=2), host)
        at.start()
        assert host.controller.admin_down == {2, 3}
        assert at.active_log == [[0.0, 2]]
        # Parked paths are excluded from steering.
        assert sorted(host.controller.live_ids) == [0, 1]

    def test_scale_up_ladder_order_and_caps(self):
        sim, host = make_world()
        spec = SloSpec(objectives=("p99 <= 100us",), autotune=True,
                       start_paths=2, cooldown=0.0)
        at = SloAutotuner(sim, spec, host)
        at.start()
        base_rep = host.policy.replication_budget
        base_flw = host.policy.table.timeout
        for i in range(20):
            at.observe(violating(), i)
        knobs = [d["knob"] for d in at.decisions]
        # Paths first (lowest parked id unparked first), then
        # replication to its cap, then flowlet halving to its floor.
        assert knobs[:2] == ["paths", "paths"]
        assert at.decisions[0]["to"] == 3 and at.decisions[1]["to"] == 4
        assert host.controller.admin_down == set()
        rep_steps = [d for d in at.decisions if d["knob"] == "replication"]
        assert rep_steps and rep_steps[0]["from"] == pytest.approx(base_rep)
        assert host.policy.replication_budget == pytest.approx(
            spec.replication_max)
        flw_steps = [d for d in at.decisions if d["knob"] == "flowlet_timeout"]
        assert flw_steps and flw_steps[0]["from"] == pytest.approx(base_flw)
        assert host.policy.table.timeout >= spec.flowlet_floor
        # Ladder exhausted: further violations change nothing.
        n = len(at.decisions)
        at.observe(violating(), 99)
        assert len(at.decisions) == n
        # Every decision carries the violation it reacted to.
        assert all(d["reason"] == "p99 <= 100us" for d in at.decisions)

    def test_cooldown_suppresses_consecutive_actions(self):
        sim, host = make_world()
        spec = SloSpec(objectives=("p99 <= 100us",), autotune=True,
                       start_paths=1, cooldown=5_000.0)
        at = SloAutotuner(sim, spec, host)
        at.start()
        at.observe(violating(), 0)
        at.observe(violating(), 1)  # still inside the cooldown (now == 0)
        assert len(at.decisions) == 1

    def test_scale_down_reverse_ladder(self):
        sim, host = make_world()
        spec = SloSpec(objectives=("p99 <= 100us",), autotune=True,
                       cooldown=0.0, hold_windows=2, penalty=0.0)
        at = SloAutotuner(sim, spec, host)
        at.start()
        base_flw = host.policy.table.timeout
        # Pre-tighten both knobs as a scale-up would have.
        host.policy.table.timeout = base_flw / 4.0
        host.policy.replication_budget += 2 * spec.replication_step
        for i in range(40):
            at.observe(comfortable(), i)
        knobs = [d["knob"] for d in at.decisions]
        # Reverse order: flowlet back to base, then replication, then paths.
        assert knobs[:2] == ["flowlet_timeout", "flowlet_timeout"]
        assert host.policy.table.timeout == pytest.approx(base_flw)
        assert "replication" in knobs
        assert knobs.index("replication") < knobs.index("paths")
        # Paths never drop below min_paths; highest ids parked first.
        assert at.decisions[-1]["to"] == spec.min_paths
        assert host.controller.admin_down == {1, 2, 3}
        assert all(d["action"] == "scale_down" for d in at.decisions)

    def test_hold_windows_hysteresis(self):
        sim, host = make_world()
        spec = SloSpec(objectives=("p99 <= 100us",), autotune=True,
                       cooldown=0.0, hold_windows=3, penalty=0.0)
        at = SloAutotuner(sim, spec, host)
        at.start()
        at.observe(comfortable(), 0)
        at.observe(comfortable(), 1)
        assert not at.decisions           # streak 2 < hold_windows 3
        # A merely-ok (not comfortable) window resets the streak.
        at.observe(comfortable(p99=90.0), 2)   # ratio 0.9 > margin 0.8
        at.observe(comfortable(), 3)
        at.observe(comfortable(), 4)
        assert not at.decisions
        at.observe(comfortable(), 5)
        assert len(at.decisions) == 1

    def test_blame_memory_blocks_oscillation(self):
        sim, host = make_world()
        spec = SloSpec(objectives=("p99 <= 100us",), autotune=True,
                       start_paths=2, cooldown=0.0, hold_windows=1,
                       penalty=30_000.0)
        at = SloAutotuner(sim, spec, host)
        at.start()
        # Violation at 2 active paths: scale to 3 and blame count 2.
        at.observe(violating(), 0)
        assert at._active_count() == 3
        # Comfortable windows now want to park back down to 2, but the
        # blame memory forbids returning to a proven-bad count until the
        # penalty expires (sim.now stays 0 here).
        for i in range(10):
            at.observe(comfortable(), i + 1)
        assert at._active_count() == 3
        assert not any(d["knob"] == "paths" and d["action"] == "scale_down"
                       for d in at.decisions)

    def test_empty_window_is_no_evidence(self):
        sim, host = make_world()
        spec = SloSpec(objectives=("p99 <= 100us",), autotune=True,
                       cooldown=0.0, hold_windows=1, penalty=0.0)
        at = SloAutotuner(sim, spec, host)
        at.start()
        empty = {"ok": True, "count": 0, "metrics": {"delivery": 100.0},
                 "violations": []}
        for i in range(5):
            at.observe(empty, i)
        assert not at.decisions

    def test_path_seconds_integral(self):
        sim, host = make_world()
        at = SloAutotuner(
            sim, SloSpec(objectives=("p99 <= 100us",)), host,
            warmup=1_000.0)
        at.active_log = [[0.0, 4], [2_000.0, 3], [4_000.0, 2]]
        # 4 paths over [1000, 2000) + 3 over [2000, 4000) + 2 over
        # [4000, 6000) = 4000 + 6000 + 4000 path-µs.
        assert at.path_seconds(6_000.0) == pytest.approx(14_000.0 / 1e6)
        assert at.path_seconds(500.0) == 0.0


# ----------------------------------------------------------------------
# Controller parking (the autotuner's actuator)
# ----------------------------------------------------------------------
class TestAdminParking:
    def test_park_unpark_cycle(self):
        _, host = make_world()
        ctl = host.controller
        assert ctl.set_admin_down(3)
        assert 3 in ctl.admin_down and 3 not in ctl.live_ids
        assert not ctl.set_admin_down(3)     # idempotent: already parked
        assert ctl.set_admin_up(3)
        assert 3 not in ctl.admin_down
        assert not ctl.set_admin_up(3)       # idempotent: already up

    def test_refuses_to_park_last_live_path(self):
        _, host = make_world(n_paths=2)
        ctl = host.controller
        assert ctl.set_admin_down(1)
        assert not ctl.set_admin_down(0)
        assert ctl.live_ids == [0]


# ----------------------------------------------------------------------
# Tracker + run() integration
# ----------------------------------------------------------------------
RUN_KW = dict(policy="adaptive", n_paths=4, load=0.4, duration=8_000.0,
              warmup=1_000.0, drain=3_000.0, seed=11)


class TestTrackerIntegration:
    def test_no_slo_means_no_report(self):
        result = repro.run(ScenarioConfig(**RUN_KW))
        assert result.slo_report is None

    def test_generous_slo_attains_everything(self):
        spec = SloSpec(objectives=("p99 <= 1s", "delivery >= 1%"),
                       window=1_000.0)
        result = repro.run(ScenarioConfig(**RUN_KW), slo=spec)
        rep = result.slo_report
        assert rep["n_windows"] >= 7
        assert rep["attainment"] == 1.0
        assert rep["attained"] == rep["n_windows"]
        assert rep["violated_windows"] == []
        assert rep["decisions"] == []
        # Windows during the traffic phase carry latency evidence; the
        # trailing drain windows are empty and vacuously attained.
        busy = [w for w in rep["windows"] if w["count"] > 0]
        assert len(busy) >= 7
        for w in busy:
            assert w["ok"]
            assert w["metrics"]["p99"] > 0
            assert w["metrics"]["delivery"] == pytest.approx(100.0)

    def test_impossible_slo_violates_everywhere(self):
        spec = SloSpec(objectives=("p99 <= 0.001us",), window=1_000.0)
        result = repro.run(ScenarioConfig(**RUN_KW), slo=spec)
        rep = result.slo_report
        busy = [w for w in rep["windows"] if w["count"] > 0]
        assert busy
        # Every window that saw a delivery violates; empty drain windows
        # are vacuously ok (no latency sample to judge).
        assert all(w["violations"] == ["p99 <= 0.001us"] for w in busy)
        assert rep["attainment"] < 1.0
        assert len(rep["violated_windows"]) == len(busy)

    def test_windows_tile_the_measured_span(self):
        spec = SloSpec(objectives=("p99 <= 1s",), window=1_000.0)
        rep = repro.run(ScenarioConfig(**RUN_KW), slo=spec).slo_report
        starts = [w["start"] for w in rep["windows"]]
        assert starts[0] == RUN_KW["warmup"]
        for prev, cur in zip(rep["windows"], rep["windows"][1:]):
            assert cur["start"] == prev["end"]
            assert cur["end"] - cur["start"] == pytest.approx(1_000.0)

    def test_static_path_seconds_scales_with_start_paths(self):
        spec4 = SloSpec(objectives=("p99 <= 1s",), window=2_000.0)
        spec2 = SloSpec(objectives=("p99 <= 1s",), window=2_000.0,
                        start_paths=2)
        rep4 = repro.run(ScenarioConfig(**RUN_KW), slo=spec4).slo_report
        rep2 = repro.run(ScenarioConfig(**RUN_KW), slo=spec2).slo_report
        assert rep4["active_log"] == [[0.0, 4]]
        assert rep2["active_log"][0][1] == 2
        assert rep2["path_seconds"] == pytest.approx(
            rep4["path_seconds"] / 2.0)

    def test_mean_objective_is_tracked(self):
        spec = SloSpec(objectives=("mean <= 1s",), window=2_000.0)
        rep = repro.run(ScenarioConfig(**RUN_KW), slo=spec).slo_report
        for w in rep["windows"]:
            assert math.isfinite(w["metrics"]["mean"])
            assert w["metrics"]["mean"] > 0

    def test_slo_kwarg_matches_config_field(self):
        def mk():
            return SloSpec(objectives=("p99 <= 1ms",), window=2_000.0)
        via_kwarg = repro.run(ScenarioConfig(**RUN_KW), slo=mk())
        via_config = repro.run(ScenarioConfig(slo=mk(), **RUN_KW))
        assert (json.dumps(via_kwarg.slo_report, sort_keys=True)
                == json.dumps(via_config.slo_report, sort_keys=True))

    def test_report_survives_result_round_trip(self):
        from repro.bench.scenarios import SimulationResult

        spec = SloSpec(objectives=("p99 <= 1ms",), window=2_000.0)
        result = repro.run(ScenarioConfig(**RUN_KW), slo=spec)
        clone = SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert clone.slo_report == result.slo_report

    def test_config_round_trip_preserves_spec(self):
        cfg = ScenarioConfig(
            slo=SloSpec(objectives=("p99 <= 1.5ms", "delivery >= 99%"),
                        autotune=True, start_paths=2),
            **RUN_KW)
        clone = ScenarioConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert clone.slo == cfg.slo

    def test_config_validate_rejects_bad_spec(self):
        cfg = ScenarioConfig(slo=SloSpec(objectives=()), **RUN_KW)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_autotuned_run_records_decisions(self):
        spec = SloSpec(objectives=("p99 <= 150us", "delivery >= 99%"),
                       window=1_000.0, autotune=True, start_paths=1,
                       cooldown=2_000.0, hold_windows=4, margin=0.7)
        result = repro.run(
            ScenarioConfig(**{**RUN_KW, "load": 0.35, "chain": "heavy",
                              "duration": 20_000.0, "drain": 6_000.0}),
            slo=spec)
        rep = result.slo_report
        ups = [d for d in rep["decisions"] if d["action"] == "scale_up"]
        assert ups, "one active path at this load must trigger a scale-up"
        assert rep["active_log"][0][1] == 1
        assert rep["active_log"][-1][1] > 1
        # Decision timestamps land on window closes, in order.
        times = [d["time"] for d in rep["decisions"]]
        assert times == sorted(times)


class TestViolationAttribution:
    def test_events_emitted_with_dominant_stage(self):
        telemetry = repro.Telemetry()
        spec = SloSpec(objectives=("p99 <= 5us",), window=2_000.0)
        repro.run(ScenarioConfig(**RUN_KW), slo=spec, telemetry=telemetry)
        events = [e for e in telemetry.events if e.name == "slo:violation"]
        assert events, "a 5us p99 bound must violate"
        attributed = [e for e in events if "dominant_stage" in e.args]
        assert attributed, "span data present, so attribution must appear"
        from repro.obs.span import LEAF_STAGES
        for e in attributed:
            assert e.args["dominant_stage"] in LEAF_STAGES
            assert 0.0 < e.args["stage_share"] <= 1.0
            assert e.args["attributed_packets"] > 0
            assert e.track == "slo"

    def test_no_spans_means_events_without_attribution(self):
        telemetry = repro.Telemetry(spans=False)
        spec = SloSpec(objectives=("p99 <= 5us",), window=2_000.0)
        repro.run(ScenarioConfig(**RUN_KW), slo=spec, telemetry=telemetry)
        events = [e for e in telemetry.events if e.name == "slo:violation"]
        assert events
        assert all("dominant_stage" not in e.args for e in events)

    def test_attribution_stays_out_of_the_report(self):
        telemetry = repro.Telemetry()
        spec = SloSpec(objectives=("p99 <= 5us",), window=2_000.0)
        result = repro.run(ScenarioConfig(**RUN_KW), slo=spec,
                           telemetry=telemetry)
        text = json.dumps(result.slo_report)
        assert "dominant_stage" not in text
