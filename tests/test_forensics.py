"""Tests for repro.obs.forensics: tail root-cause attribution."""

from __future__ import annotations

import json

import pytest

import repro
from repro import FaultSchedule, RunOptions, ScenarioConfig, Telemetry
from repro.obs.forensics import (
    CAUSES,
    STAGE_TO_CAUSE,
    ForensicsSpec,
    attribute_tail,
    fault_windows,
    render_forensics,
)

#: Short single-path scenario under pressure: the tail is dominated by
#: vSwitch queueing, which makes attribution outcomes easy to reason
#: about in assertions.
SINGLE = dict(
    policy="single",
    n_paths=1,
    load=0.85,
    duration=8_000.0,
    warmup=1_000.0,
    drain=4_000.0,
    seed=42,
)

MULTI = dict(
    policy="adaptive",
    n_paths=4,
    load=0.7,
    duration=8_000.0,
    warmup=1_000.0,
    drain=4_000.0,
    seed=42,
)


def run_armed(base: dict, *, faults=None, spec=None, **over):
    """One instrumented + forensicated run."""
    cfg = ScenarioConfig(**{**base, **over})
    opts = RunOptions(telemetry=Telemetry(metrics_interval=500.0),
                      faults=faults, forensics=spec if spec else True)
    return repro.run(cfg, opts)


class TestForensicsSpec:
    def test_defaults_validate(self):
        spec = ForensicsSpec().validate()
        assert spec.quantile == 99.0
        assert spec.top_k == 5
        assert 0.0 < spec.dominance <= 1.0

    @pytest.mark.parametrize("kw", [
        {"quantile": 100.0},
        {"quantile": -1.0},
        {"top_k": -1},
        {"dominance": 0.0},
        {"dominance": 1.5},
        {"ccdf_points": 1},
    ])
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ValueError):
            ForensicsSpec(**kw).validate()

    def test_round_trip(self):
        spec = ForensicsSpec(quantile=95.0, top_k=2, dominance=0.6,
                             ccdf_points=16)
        assert ForensicsSpec.from_dict(spec.to_dict()) == spec


class TestFaultWindows:
    def test_pairs_arm_and_clear(self):
        timeline = [
            (10.0, "arm", "crash", 1),
            (20.0, "clear", "crash", 1),
            (30.0, "arm", "degrade", 2),
            (40.0, "clear", "degrade", 2),
        ]
        wins = fault_windows(timeline, horizon=100.0)
        assert wins == [
            {"kind": "crash", "target": 1, "start": 10.0, "end": 20.0},
            {"kind": "degrade", "target": 2, "start": 30.0, "end": 40.0},
        ]

    def test_unclosed_arm_extends_to_horizon(self):
        wins = fault_windows([(5.0, "arm", "hang", 0)], horizon=77.0)
        assert wins == [{"kind": "hang", "target": 0,
                         "start": 5.0, "end": 77.0}]

    def test_empty_and_none(self):
        assert fault_windows([], horizon=10.0) == []
        assert fault_windows(None, horizon=10.0) == []


class TestAttribution:
    def test_requires_traced_run(self):
        bare = repro.run(ScenarioConfig(**SINGLE))
        with pytest.raises(ValueError, match="traced"):
            attribute_tail(bare)

    def test_report_invariants(self):
        result = run_armed(SINGLE)
        report = result.forensics_report
        assert report is not None
        # Histogram must account for every analyzed packet exactly once.
        assert sum(report["cause_histogram"].values()) == report["analyzed"]
        assert set(report["cause_histogram"]) == set(CAUSES)
        assert report["analyzed"] > 0
        assert report["threshold_us"] > 0
        assert report["delivered_traced"] >= report["analyzed"]
        # Blame matrix rows must re-sum to the histogram.
        for cause, row in report["blame_matrix"].items():
            assert sum(row.values()) == report["cause_histogram"][cause]
        # CCDF exists exactly for causes with mass.
        assert set(report["tail_ccdf"]) == {
            c for c, n in report["cause_histogram"].items() if n
        }

    def test_exemplars_are_slowest_first(self):
        result = run_armed(SINGLE, spec=ForensicsSpec(top_k=4))
        exemplars = result.forensics_report["exemplars"]
        assert 0 < len(exemplars) <= 4
        lats = [ex["e2e_us"] for ex in exemplars]
        assert lats == sorted(lats, reverse=True)
        for ex in exemplars:
            assert ex["cause"] in CAUSES
            assert ex["timeline"], "exemplar must embed its span timeline"
            assert ex["e2e_us"] >= result.forensics_report["threshold_us"]

    def test_single_path_tail_is_congestion_shaped(self):
        # Under 0.85 load on one path, the tail is queue/service bound:
        # stage-attributed causes only, no fault or replication labels.
        report = run_armed(SINGLE).forensics_report
        hist = report["cause_histogram"]
        assert hist["fault_window"] == 0
        assert hist["replication_loss"] == 0
        stage_mass = sum(hist[c] for c in STAGE_TO_CAUSE.values())
        assert stage_mass + hist["mixed"] == report["analyzed"]
        assert hist["queue_buildup"] > 0

    def test_fault_run_attributes_fault_window(self):
        # Round-robin keeps spraying onto the degraded path (no health
        # steering), so tail packets provably transit the armed window.
        sched = FaultSchedule().degrade(path=1, at=2_000.0,
                                        duration=6_000.0, factor=8.0)
        result = run_armed(MULTI, faults=sched, policy="rr")
        report = result.forensics_report
        assert report["fault_windows"], "availability timeline must surface"
        assert report["cause_histogram"]["fault_window"] >= 1
        blamed = report["blame_matrix"]["fault_window"]
        assert "path1" in blamed

    def test_lower_quantile_analyzes_more(self):
        p99 = run_armed(SINGLE).forensics_report
        p90 = run_armed(SINGLE,
                        spec=ForensicsSpec(quantile=90.0)).forensics_report
        assert p90["analyzed"] > p99["analyzed"]
        assert p90["threshold_us"] < p99["threshold_us"]

    def test_empty_tail_when_nothing_delivered_after_warmup(self):
        # Warmup beyond the whole horizon: no packet counts as delivered.
        result = run_armed(SINGLE, duration=500.0, warmup=1e9, drain=100.0)
        report = result.forensics_report
        assert report["delivered_traced"] == 0
        assert report["analyzed"] == 0
        assert report["threshold_us"] is None
        assert sum(report["cause_histogram"].values()) == 0
        # Rendering the empty report must not crash.
        assert "no delivered traced packets" in render_forensics(report)

    def test_drop_accounting_joined(self):
        report = run_armed(SINGLE).forensics_report
        drops = report["drops"]
        assert set(drops) >= {"by_reason", "nic", "suppressed_copies"}

    def test_render_mentions_causes_and_exemplars(self):
        report = run_armed(SINGLE).forensics_report
        text = render_forensics(report)
        assert "tail forensics" in text
        assert "blame matrix" in text
        for cause, n in report["cause_histogram"].items():
            if n:
                assert cause in text


class TestReplicationLoss:
    def test_crashed_path_erodes_replica_coverage(self):
        # redundant2 sprays two copies; crashing a path mid-run kills the
        # copies in flight on it.  Survivors delivered during the outage
        # either transited the faulted window themselves (fault_window)
        # or lost a sibling (replication_loss) -- the tail must show the
        # fault somewhere, and lost siblings must be recorded as
        # evidence on at least one analyzed or exemplar packet.
        sched = FaultSchedule().crash(path=1, at=2_000.0, duration=5_000.0)
        result = run_armed(MULTI, faults=sched, policy="redundant2",
                           spec=ForensicsSpec(quantile=50.0, top_k=50))
        report = result.forensics_report
        hist = report["cause_histogram"]
        assert hist["fault_window"] + hist["replication_loss"] >= 1
        assert sum(hist.values()) == report["analyzed"]


class TestDeterminism:
    def test_same_seed_byte_identical_report(self):
        a = run_armed(SINGLE).forensics_report
        b = run_armed(SINGLE).forensics_report
        assert (json.dumps(a, sort_keys=True)
                == json.dumps(b, sort_keys=True))

    def test_report_is_json_round_trippable(self):
        report = run_armed(MULTI).forensics_report
        again = json.loads(json.dumps(report))
        assert again["cause_histogram"] == report["cause_histogram"]

    def test_attribute_tail_is_idempotent(self):
        result = run_armed(SINGLE)
        first = result.forensics_report
        second = attribute_tail(result)
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))
