"""Tests for the fabric model, host link, and unit helpers."""

import numpy as np
import pytest

from repro import units
from repro.net import FabricModel, HostLink


class TestUnits:
    def test_pps_to_iat(self):
        assert units.pps_to_iat_us(1_000_000) == pytest.approx(1.0)
        assert units.pps_to_iat_us(500_000) == pytest.approx(2.0)

    def test_bps_to_bytes_per_us(self):
        assert units.bps_to_bytes_per_us(8e6) == pytest.approx(1.0)
        assert units.bps_to_bytes_per_us(units.gbps(10)) == pytest.approx(1250.0)

    def test_serialization(self):
        # 1250 bytes at 10 Gbps = 1 µs
        assert units.serialization_us(1250, 10e9) == pytest.approx(1.0)

    def test_converters(self):
        assert units.gbps(1) == 1e9
        assert units.mbps(1) == 1e6
        assert units.ms(2) == 2000.0
        assert units.seconds(1) == 1_000_000.0

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            units.pps_to_iat_us(0)
        with pytest.raises(ValueError):
            units.bps_to_bytes_per_us(-1)


class TestFabricModel:
    def test_fixed_delay(self, sim, mk_packet):
        got = []
        fab = FabricModel(sim, lambda p: got.append((sim.now, p)), base_delay=25.0)
        fab.send(mk_packet())
        sim.run()
        assert got[0][0] == 25.0
        assert fab.forwarded == 1

    def test_jitter_requires_rng(self, sim):
        with pytest.raises(ValueError):
            FabricModel(sim, lambda p: None, base_delay=10.0, jitter_sigma=0.3)

    def test_jitter_spreads_delays(self, sim, mk_packet, rng):
        got = []
        fab = FabricModel(sim, lambda p: got.append(sim.now), rng=rng,
                          base_delay=10.0, jitter_sigma=0.5)
        send_times = []
        for i in range(500):
            sim.call_at(float(i * 100), fab.send, mk_packet(flow_id=-1))
            send_times.append(i * 100.0)
        sim.run()
        delays = np.array(got) - np.array(send_times)
        assert delays.std() > 1.0
        assert np.all(delays > 0)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            FabricModel(sim, lambda p: None, base_delay=-1.0)


class TestHostLink:
    def test_serialization_delay(self, sim, mk_packet):
        got = []
        link = HostLink(sim, lambda p: got.append(sim.now), rate_bps=10e9)
        link.send(mk_packet(size=1250))
        sim.run()
        assert got == [pytest.approx(1.0)]

    def test_back_to_back_packets_queue(self, sim, mk_packet):
        got = []
        link = HostLink(sim, lambda p: got.append(sim.now), rate_bps=10e9)
        link.send(mk_packet(size=1250))
        link.send(mk_packet(size=1250))
        sim.run()
        assert got == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_idle_gap_resets_wire(self, sim, mk_packet):
        got = []
        link = HostLink(sim, lambda p: got.append(sim.now), rate_bps=10e9)
        link.send(mk_packet(size=1250))
        sim.call_at(100.0, link.send, mk_packet(size=1250))
        sim.run()
        assert got == [pytest.approx(1.0), pytest.approx(101.0)]
