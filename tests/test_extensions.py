"""Tests for the extension features: queue evacuation and
ParaGraph-style intra-chain parallel composition."""

import pytest

from repro import (
    MpdpConfig,
    MultipathDataPlane,
    PathConfig,
    PoissonSource,
    RngRegistry,
    SHARED_CORE,
    Simulator,
)
from repro.core import PathController, StragglerDetector
from repro.core.detector import DetectorConfig
from repro.dataplane.interference import NoisyNeighbor
from repro.dataplane.path import DataPath
from repro.elements import Chain, Delay, ElementGraph, StageParallelChain
from repro.elements.nf import AclFirewall, AclRule, Classifier, Nat


def diamond_graph():
    g = ElementGraph("diamond")
    g.add(Delay("src", base_cost=0.2))
    g.add(Delay("left", base_cost=1.0))
    g.add(Delay("right", base_cost=3.0))
    g.add(Delay("dst", base_cost=0.2))
    g.connect("src", "left")
    g.connect("src", "right")
    g.connect("left", "dst")
    g.connect("right", "dst")
    return g


class TestStageParallelChain:
    def test_cost_is_level_max_plus_overheads(self, mk_packet):
        chain = diamond_graph().compile_parallel(copy_cost=0.1, merge_cost=0.3)
        cost = chain.process(mk_packet(), 0.0)
        # src (0.2) + max(1.0, 3.0) + copy 0.1 + merge 0.3 + dst (0.2)
        assert cost == pytest.approx(0.2 + 3.0 + 0.1 + 0.3 + 0.2)

    def test_parallel_cheaper_than_serial_when_branchy(self):
        g = diamond_graph()
        serial = Chain(g.topological_order())
        para = g.compile_parallel()
        assert para.mean_cost() < serial.mean_cost()

    def test_linear_graph_gains_nothing(self):
        g = ElementGraph("lin")
        g.add(Delay("a", base_cost=1.0))
        g.add(Delay("b", base_cost=1.0))
        g.chain("a", "b")
        para = g.compile_parallel()
        serial = Chain(g.topological_order())
        assert para.mean_cost() == pytest.approx(serial.mean_cost())

    def test_drop_in_parallel_stage_stops_chain(self, factory):
        from repro.net.packet import FiveTuple

        g = ElementGraph("fwpar")
        g.add(Classifier("cls", rules=[]))
        g.add(AclFirewall("fw", rules=[AclRule(action="deny")]))
        g.add(Delay("sibling"))
        g.add(Delay("after"))
        g.connect("cls", "fw")
        g.connect("cls", "sibling")
        g.connect("fw", "after")
        g.connect("sibling", "after")
        chain = g.compile_parallel()
        p = factory.make(FiveTuple(1, 2, 3, 4), 100, 0.0)
        chain.process(p, 0.0)
        assert p.dropped is not None
        after = next(e for e in chain.elements if e.name == "after")
        assert after.processed == 0
        assert chain.dropped == 1

    def test_clone_independent(self, mk_packet):
        chain = diamond_graph().compile_parallel()
        cp = chain.clone("@1")
        cp.process(mk_packet(), 0.0)
        assert chain.processed == 0 and cp.processed == 1
        assert all(e.name.endswith("@1") for e in cp.elements)

    def test_stateful_flag(self):
        g = ElementGraph("s")
        g.add(Nat("nat"))
        assert g.compile_parallel().stateful

    def test_validation(self):
        with pytest.raises(ValueError):
            StageParallelChain([])
        with pytest.raises(ValueError):
            StageParallelChain([[Delay("d")]], copy_cost=-1.0)

    def test_nests_inside_datapath(self, sim, rng, mk_packet):
        done = []
        chain = diamond_graph().compile_parallel()
        dp = DataPath(sim, 0, chain, done.append, rng=rng)
        # Composite preserved (flowcache + whole parallel chain).
        assert len(dp.chain.elements) == 2
        assert dp.chain.elements[1] is chain
        assert dp.chain.mean_cost() > 0
        dp.enqueue(mk_packet())
        sim.run()
        assert len(done) == 1


class TestEvacuation:
    def _host(self, evacuation, seed=17):
        # Flowlet policy has no mid-flowlet straggler escape, so packets
        # genuinely pile up behind the stalled path -- the case queue
        # evacuation exists for.
        sim = Simulator()
        rngs = RngRegistry(seed=seed)
        cfg = MpdpConfig(
            n_paths=4, policy="flowlet",
            path=PathConfig(jitter=SHARED_CORE),
            controller_interval=200.0, evacuation=evacuation,
            warmup=5_000.0,
        )
        host = MultipathDataPlane(sim, cfg, rngs)
        # Hammer path 0's core so its queue backs up mid-run.
        NoisyNeighbor(sim, host.paths[0].vcpu, SHARED_CORE, intensity=10.0
                      ).schedule_burst(10_000.0, 20_000.0)
        src = PoissonSource(
            sim, host.factory, host.input, rngs.stream("t"),
            rate_pps=600_000, n_flows=256, duration=40_000.0,
        )
        src.start()
        sim.run(until=50_000.0)
        host.finalize()
        return host

    def test_evacuation_moves_packets(self):
        host = self._host(evacuation=True)
        assert host.controller.evacuated > 0

    def test_no_evacuation_without_flag(self):
        host = self._host(evacuation=False)
        assert host.controller.evacuated == 0

    def test_conservation_with_evacuation(self):
        host = self._host(evacuation=True)
        st = host.stats()
        accounted = (st["delivered"] + st["suppressed"]
                     + sum(st["drops"].values()) + st["nic_drops"])
        assert accounted == st["ingress"] + st["replicas"]

    def test_evacuation_improves_extreme_tail(self):
        with_ev = self._host(evacuation=True)
        without = self._host(evacuation=False)
        p999_with = with_ev.sink.recorder.exact_percentile(99.9)
        p999_without = without.sink.recorder.exact_percentile(99.9)
        assert with_ev.controller.evacuated > 20
        assert p999_with < 0.8 * p999_without

    def test_controller_validation(self, sim):
        with pytest.raises(ValueError):
            PathController(sim, [], StragglerDetector(), evacuate_batch=0)
