"""Tests for Resource, Store, PriorityStore, Container."""

import pytest

from repro.sim import Container, PriorityStore, Resource, Store
from repro.sim.errors import SimulationError


class TestResource:
    def test_grants_up_to_capacity(self, sim):
        res = Resource(sim, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert res.count == 2

    def test_release_grants_next_waiter(self, sim):
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r1)
        assert r2.triggered
        sim.run()

    def test_fifo_grant_order(self, sim):
        res = Resource(sim, capacity=1)
        first = res.request()
        waiters = [res.request() for _ in range(3)]
        res.release(first)
        assert waiters[0].triggered and not waiters[1].triggered

    def test_cancel_queued_request(self, sim):
        res = Resource(sim, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r2)  # cancel while queued
        res.release(r1)
        assert len(res.queue) == 0 and res.count == 0

    def test_release_unknown_raises(self, sim):
        res = Resource(sim, capacity=1)
        r = res.request()
        res.release(r)
        with pytest.raises(SimulationError):
            res.release(r)

    def test_context_manager_usage(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def user(sim, res, tag, hold):
            req = res.request()
            yield req
            with req:
                log.append((sim.now, tag, "in"))
                yield sim.timeout(hold)
            log.append((sim.now, tag, "out"))

        sim.process(user(sim, res, "a", 5.0))
        sim.process(user(sim, res, "b", 2.0))
        sim.run()
        assert log == [(0.0, "a", "in"), (5.0, "a", "out"), (5.0, "b", "in"), (7.0, "b", "out")]

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)


class TestStore:
    def test_put_get_fifo(self, sim):
        st = Store(sim)
        for i in range(3):
            st.put(i)
        got = [st.get().value for _ in range(3)]
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self, sim):
        st = Store(sim)
        g = st.get()
        assert not g.triggered
        st.put("item")
        assert g.triggered and g.value == "item"
        sim.run()

    def test_put_blocks_at_capacity(self, sim):
        st = Store(sim, capacity=1)
        p1 = st.put(1)
        p2 = st.put(2)
        assert p1.triggered and not p2.triggered
        st.get()
        assert p2.triggered
        sim.run()

    def test_len(self, sim):
        st = Store(sim)
        st.put("a")
        st.put("b")
        assert len(st) == 2

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_producer_consumer_through_bounded_store(self, sim):
        st = Store(sim, capacity=2)
        got = []

        def producer(sim, st):
            for i in range(10):
                yield st.put(i)

        def consumer(sim, st):
            for _ in range(10):
                item = yield st.get()
                got.append(item)
                yield sim.timeout(1.0)

        sim.process(producer(sim, st))
        sim.process(consumer(sim, st))
        sim.run()
        assert got == list(range(10))


class TestPriorityStore:
    def test_get_returns_smallest(self, sim):
        st = PriorityStore(sim)
        for v in (5, 1, 3):
            st.put(v)
        got = [st.get().value for _ in range(3)]
        assert got == [1, 3, 5]

    def test_tuple_items_for_payloads(self, sim):
        st = PriorityStore(sim)
        st.put((2, 0, "low"))
        st.put((1, 1, "high"))
        assert st.get().value[2] == "high"


class TestContainer:
    def test_initial_level(self, sim):
        c = Container(sim, capacity=10, init=4)
        assert c.level == 4

    def test_get_blocks_until_level(self, sim):
        c = Container(sim, capacity=10)
        g = c.get(5)
        assert not g.triggered
        c.put(3)
        assert not g.triggered
        c.put(2)
        assert g.triggered
        assert c.level == 0
        sim.run()

    def test_put_blocks_at_capacity(self, sim):
        c = Container(sim, capacity=10, init=8)
        p = c.put(5)
        assert not p.triggered
        c.get(3)
        assert p.triggered
        assert c.level == 10
        sim.run()

    def test_non_positive_amounts_rejected(self, sim):
        c = Container(sim, capacity=10)
        with pytest.raises(ValueError):
            c.put(0)
        with pytest.raises(ValueError):
            c.get(-1)

    def test_init_outside_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            Container(sim, capacity=5, init=6)
