"""Tests for the WeightedRandom policy and subgraph-optimal compilation."""

import numpy as np
import pytest

from repro import (
    MpdpConfig,
    MultipathDataPlane,
    PathConfig,
    PoissonSource,
    RngRegistry,
    SHARED_CORE,
    Simulator,
)
from repro.core.policies import WeightedRandom, make_policy
from repro.dataplane.path import DataPath
from repro.elements import Chain, Delay, ElementGraph
from repro.elements.parallel import StageParallelChain


@pytest.fixture
def paths(sim, rng):
    return [
        DataPath(sim, i, Chain([Delay("d")]), lambda p: None, rng=rng)
        for i in range(4)
    ]


class _FakeController:
    def __init__(self, weights):
        self.weights = weights


class TestWeightedRandom:
    def test_registered_in_factory(self, rng):
        assert make_policy("weighted", rng=rng).name == "weighted"
        with pytest.raises(ValueError):
            make_policy("weighted")

    def test_uniform_before_binding(self, paths, mk_packet, rng):
        pol = WeightedRandom(rng)
        picks = [pol.select(mk_packet(flow_id=i), paths, float(i) * 1000)[0]
                 for i in range(400)]
        for pid in range(4):
            assert picks.count(pid) > 40

    def test_respects_controller_weights(self, paths, mk_packet, rng):
        pol = WeightedRandom(rng)
        pol.bind_controller(_FakeController([0.7, 0.3, 0.0, 0.0]))
        picks = [pol.select(mk_packet(flow_id=i), paths, float(i) * 1000)[0]
                 for i in range(500)]
        assert picks.count(3) == 0 and picks.count(2) == 0
        assert picks.count(0) > picks.count(1)

    def test_flowlet_affinity(self, paths, mk_packet, rng):
        pol = WeightedRandom(rng, flowlet_timeout=1_000.0)
        a = pol.select(mk_packet(flow_id=5), paths, 0.0)[0]
        b = pol.select(mk_packet(flow_id=5, seq=1), paths, 100.0)[0]
        assert a == b

    def test_mpdp_binds_controller(self):
        sim = Simulator()
        rngs = RngRegistry(seed=2)
        host = MultipathDataPlane(
            sim, MpdpConfig(n_paths=4, policy="weighted"), rngs
        )
        assert host.policy.controller is host.controller

    def test_end_to_end_shifts_away_from_slow_path(self):
        """Degrade path 0 heavily; after a while the weighted policy
        should route most new flowlets elsewhere."""
        from repro.dataplane.vcpu import JitterParams

        sim = Simulator()
        rngs = RngRegistry(seed=4)
        host = MultipathDataPlane(
            sim,
            MpdpConfig(n_paths=4, policy="weighted",
                       path=PathConfig(jitter=SHARED_CORE),
                       controller_interval=200.0),
            rngs,
        )
        host.paths[0].vcpu.set_params(
            JitterParams(mean_run=300.0, stall_median=400.0), now=0.0
        )
        src = PoissonSource(sim, host.factory, host.input, rngs.stream("t"),
                            rate_pps=500_000, n_flows=256, duration=40_000.0)
        src.start()
        sim.run(until=50_000.0)
        host.finalize()
        share0 = host.paths[0].completed / max(host.sink.delivered, 1)
        assert share0 < 0.15  # fair share would be 0.25


class TestCompileOptimal:
    def _graph(self, mid_costs):
        g = ElementGraph("g")
        g.add(Delay("src", base_cost=0.2))
        for i, c in enumerate(mid_costs):
            g.add(Delay(f"m{i}", base_cost=c))
            g.connect("src", f"m{i}")
        g.add(Delay("dst", base_cost=0.2))
        for i in range(len(mid_costs)):
            g.connect(f"m{i}", "dst")
        return g

    def test_parallelizes_balanced_level(self):
        g = self._graph([1.0, 1.0, 1.0])
        chain = g.compile_optimal(copy_cost=0.1, merge_cost=0.2)
        assert isinstance(chain, StageParallelChain)
        # serial middle = 3.0; parallel = 1.0 + 0.2 + 0.2 = 1.4 -> pays.
        shapes = [len(s) for s in chain.stages]
        assert 3 in shapes
        assert chain.mean_cost() == pytest.approx(0.2 + 1.4 + 0.2)

    def test_serializes_amdahl_limited_level(self):
        g = self._graph([3.0, 0.1, 0.1])
        chain = g.compile_optimal(copy_cost=0.5, merge_cost=0.5)
        # serial = 3.2; parallel = 3.0 + 1.0 + 0.5 = 4.5 -> does not pay.
        assert all(len(s) == 1 for s in chain.stages)
        assert chain.mean_cost() == pytest.approx(0.2 + 3.2 + 0.2)

    def test_never_worse_than_both_alternatives(self):
        for costs in ([1.0, 1.0], [2.0, 0.1], [0.5, 0.5, 0.5, 0.5]):
            g = self._graph(costs)
            opt = g.compile_optimal().mean_cost()
            serial = Chain(g.topological_order()).mean_cost()
            para = g.compile_parallel().mean_cost()
            assert opt <= serial + 1e-9
            assert opt <= para + 1e-9

    def test_optimal_processes_packets(self, mk_packet):
        chain = self._graph([1.0, 1.0]).compile_optimal()
        cost = chain.process(mk_packet(), 0.0)
        assert cost > 0
