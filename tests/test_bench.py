"""Tests for the experiment harness (repro.bench)."""

import dataclasses

import pytest

from repro.bench import ScenarioConfig, bench_scale, scaled_duration, run_scenario, sweep
from repro.bench.runner import grid, policy_comparison
from repro.dataplane.vcpu import JitterParams


def tiny(**kw):
    """A scenario small enough for unit tests."""
    defaults = dict(duration=3_000.0, warmup=500.0, drain=5_000.0,
                    jitter=JitterParams(), load=0.4, n_flows=32)
    defaults.update(kw)
    return ScenarioConfig(**defaults)


class TestScenarioConfig:
    def test_capacity_calibration_positive_and_cached(self):
        cfg = tiny(chain="basic")
        c1 = cfg.path_capacity_pps()
        c2 = cfg.path_capacity_pps()
        assert c1 == c2 > 0

    def test_heavier_chain_lower_capacity(self):
        assert (
            tiny(chain="heavy").path_capacity_pps()
            < tiny(chain="basic").path_capacity_pps()
        )

    def test_rate_scales_with_load_and_paths(self):
        base = tiny(load=0.5, n_paths=2)
        assert tiny(load=1.0, n_paths=2).rate_pps() == pytest.approx(2 * base.rate_pps())
        assert tiny(load=0.5, n_paths=4).rate_pps() == pytest.approx(2 * base.rate_pps())

    def test_mean_off_duty_cycle(self):
        cfg = tiny(burstiness=4.0, mean_on=100.0)
        assert cfg.mean_off_us() == pytest.approx(300.0)
        with pytest.raises(ValueError):
            tiny(burstiness=0.5).mean_off_us()


class TestSimulate:
    def test_poisson_run_delivers(self):
        res = run_scenario(tiny())
        assert res.stats["delivered"] > 0
        assert res.offered >= res.stats["delivered"]
        assert res.summary.count > 0

    def test_load_drives_utilization(self):
        lo = run_scenario(tiny(load=0.2, duration=10_000.0))
        hi = run_scenario(tiny(load=0.8, duration=10_000.0))
        # Delivered packet count scales roughly with offered load.
        assert hi.stats["delivered"] > 2.5 * lo.stats["delivered"]

    def test_onoff_traffic(self):
        res = run_scenario(tiny(traffic="onoff", burstiness=3.0))
        assert res.stats["delivered"] > 0

    def test_incast_traffic(self):
        res = run_scenario(tiny(traffic="incast", fan_in=4, burst_pkts=4, epoch=1_000.0))
        assert res.stats["delivered"] > 0

    def test_flow_traffic_tracks_fct(self):
        res = run_scenario(tiny(traffic="flows", duration=10_000.0,
                            flow_load=0.3, max_flow_pkts=50))
        assert res.tracker is not None
        assert len(res.tracker.completed) > 0
        assert len(res.tracker.fcts()) == len(res.tracker.completed)

    def test_unknown_traffic_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(tiny(traffic="carrier-pigeon"))

    def test_interference_applied(self):
        quiet = run_scenario(tiny(policy="single", n_paths=1, duration=20_000.0,
                              jitter=JitterParams(mean_run=5_000.0, stall_median=10.0)))
        noisy = run_scenario(tiny(policy="single", n_paths=1, duration=20_000.0,
                              jitter=JitterParams(mean_run=5_000.0, stall_median=10.0),
                              interfere_intensity=8.0))
        assert noisy.exact_percentile(99) > quiet.exact_percentile(99)

    def test_deterministic(self):
        a = run_scenario(tiny(seed=5))
        b = run_scenario(tiny(seed=5))
        assert a.summary == b.summary


class TestRunner:
    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5
        assert scaled_duration(100.0) == 50.0

    def test_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "zero")
        with pytest.raises(ValueError):
            bench_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()

    def test_sweep_varies_parameter(self):
        results = sweep(tiny(), "load", [0.2, 0.5])
        assert len(results) == 2
        assert results[0].config.load == 0.2
        assert results[1].config.load == 0.5

    def test_policy_comparison_single_gets_one_path(self):
        results = policy_comparison(tiny(n_paths=4), ("single", "rr"))
        assert len(results["single"].host.paths) == 1
        assert len(results["rr"].host.paths) == 4

    def test_grid(self):
        out = grid(tiny(), "load", [0.2], "n_paths", [1, 2])
        assert set(out) == {(0.2, 1), (0.2, 2)}
