"""Integration tests: the qualitative claims of the paper, at test scale.

Each test runs a short simulation and asserts the *shape* of the result
(who wins, directionally) rather than absolute numbers.  The full-scale
versions of these comparisons live in benchmarks/.
"""

import pytest

from repro import (
    CONTENDED_CORE,
    FlowSource,
    FlowTracker,
    IncastSource,
    MpdpConfig,
    MultipathDataPlane,
    OnOffSource,
    PathConfig,
    PoissonSource,
    RngRegistry,
    SHARED_CORE,
    Simulator,
    WEBSEARCH_CDF,
)


_RUN_CACHE = {}


def run_poisson(policy, *, n_paths=4, jitter=SHARED_CORE, rate=500_000,
                dur=40_000.0, seed=21, n_flows=256, **cfg_kw):
    # Memoized: several tests compare against the same baseline run.
    key = (policy, n_paths, jitter, rate, dur, seed, n_flows,
           tuple(sorted(cfg_kw.items())))
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    cfg = MpdpConfig(
        n_paths=n_paths, policy=policy,
        path=PathConfig(jitter=jitter), warmup=5_000.0, **cfg_kw,
    )
    host = MultipathDataPlane(sim, cfg, rngs)
    src = PoissonSource(
        sim, host.factory, host.input, rngs.stream("traffic"),
        rate_pps=rate, n_flows=n_flows, duration=dur,
    )
    src.start()
    sim.run(until=dur + 5_000.0)
    host.finalize()
    _RUN_CACHE[key] = host
    return host


def p99(host):
    return host.sink.recorder.exact_percentile(99)


class TestHeadlineClaims:
    def test_multipath_beats_single_path_tail(self):
        """F3's core claim: k=4 multipath cuts p99 by a large factor."""
        single = run_poisson("single", n_paths=1)
        adaptive = run_poisson("adaptive", n_paths=4)
        assert p99(adaptive) < 0.6 * p99(single)

    def test_adaptive_beats_static_hash(self):
        hash_host = run_poisson("hash")
        adaptive = run_poisson("adaptive")
        assert p99(adaptive) < p99(hash_host)

    def test_median_unaffected_by_multipath(self):
        """Multipath is a tail fix: medians should be comparable."""
        single = run_poisson("single", n_paths=1)
        adaptive = run_poisson("adaptive")
        med_s = single.sink.recorder.exact_percentile(50)
        med_a = adaptive.sink.recorder.exact_percentile(50)
        assert med_a < 3.0 * med_s + 5.0

    def test_no_jitter_multipath_gain_small(self):
        """Without scheduling jitter the single path has no stalls to
        dodge, so the multipath win must shrink drastically."""
        from repro.dataplane.vcpu import JitterParams

        nojit = JitterParams()
        single = run_poisson("single", n_paths=1, jitter=nojit, rate=300_000)
        multi = run_poisson("adaptive", n_paths=4, jitter=nojit, rate=300_000)
        # Both tails should be tiny (< 20 µs) without stalls.
        assert p99(single) < 20.0
        assert p99(multi) < 20.0


class TestRedundancyFrontier:
    def test_redundancy_wins_at_low_load(self):
        red = run_poisson("redundant2", rate=200_000)
        rr = run_poisson("rr", rate=200_000)
        assert (
            red.sink.recorder.exact_percentile(99.9)
            <= rr.sink.recorder.exact_percentile(99.9)
        )

    def test_redundancy_collapses_near_saturation(self):
        """Duplicating every packet doubles offered CPU load: near path
        saturation, redundancy must lose to plain spraying badly."""
        rate = 5_000_000  # ~70% of 4-path capacity; 140% once duplicated
        red = run_poisson("redundant2", rate=rate, dur=20_000.0)
        rr = run_poisson("rr", rate=rate, dur=20_000.0)
        assert p99(red) > 2.0 * p99(rr)

    def test_adaptive_selective_replication_is_cheap(self):
        adaptive = run_poisson("adaptive", rate=400_000)
        red = run_poisson("redundant2", rate=400_000)
        assert adaptive.cpu_per_delivered() < 0.7 * red.cpu_per_delivered()


class TestInterferenceResilience:
    def test_single_path_hurt_more_by_contention(self):
        s_shared = run_poisson("single", n_paths=1, jitter=SHARED_CORE, rate=300_000)
        s_cont = run_poisson("single", n_paths=1, jitter=CONTENDED_CORE, rate=300_000)
        a_shared = run_poisson("adaptive", jitter=SHARED_CORE, rate=300_000)
        a_cont = run_poisson("adaptive", jitter=CONTENDED_CORE, rate=300_000)
        single_degradation = p99(s_cont) / p99(s_shared)
        adaptive_degradation = p99(a_cont) / p99(a_shared)
        assert p99(a_cont) < p99(s_cont)
        # Adaptive's absolute tail under contention stays far below single's.
        assert p99(a_cont) < 0.7 * p99(s_cont)


class TestBurstyTraffic:
    def test_multipath_absorbs_bursts(self):
        def run(policy, n_paths):
            sim = Simulator()
            rngs = RngRegistry(seed=5)
            cfg = MpdpConfig(
                n_paths=n_paths, policy=policy,
                path=PathConfig(jitter=SHARED_CORE), warmup=5_000.0,
            )
            host = MultipathDataPlane(sim, cfg, rngs)
            src = OnOffSource(
                sim, host.factory, host.input, rngs.stream("t"),
                peak_rate_pps=2_000_000, mean_on=200.0, mean_off=600.0,
                duration=80_000.0,
            )
            src.start()
            sim.run(until=90_000.0)
            host.finalize()
            return host

        single = run("single", 1)
        multi = run("adaptive", 4)
        # Mid-flowlet escapes pay a reordering toll under bursts, so the
        # test-scale margin is looser than F4's full-scale one.
        assert p99(multi) < 0.65 * p99(single)


class TestFlowCompletionTimes:
    def test_short_flow_fct_improves_with_multipath(self):
        def run(policy, n_paths):
            sim = Simulator()
            rngs = RngRegistry(seed=31)
            tracker = FlowTracker()
            cfg = MpdpConfig(
                n_paths=n_paths, policy=policy,
                path=PathConfig(jitter=SHARED_CORE), warmup=0.0,
            )
            host = MultipathDataPlane(sim, cfg, rngs, tracker=tracker)
            src = FlowSource(
                sim, host.factory, host.input, rngs.stream("t"),
                flow_rate_fps=5_000.0, size_cdf=WEBSEARCH_CDF,
                tracker=tracker, duration=80_000.0, max_flow_pkts=200,
            )
            src.start()
            sim.run(until=160_000.0)
            host.finalize()
            return tracker

        import numpy as np

        single = run("single", 1)
        multi = run("adaptive", 4)
        s_fct = single.fcts_by_size(max_size=100_000)
        m_fct = multi.fcts_by_size(max_size=100_000)
        assert len(s_fct) > 30 and len(m_fct) > 30
        assert np.percentile(m_fct, 99) < np.percentile(s_fct, 99)


class TestIncast:
    def test_incast_bursts_flow_through(self):
        sim = Simulator()
        rngs = RngRegistry(seed=8)
        cfg = MpdpConfig(n_paths=4, policy="leastload",
                         path=PathConfig(jitter=SHARED_CORE))
        host = MultipathDataPlane(sim, cfg, rngs)
        src = IncastSource(
            sim, host.factory, host.input, rngs.stream("t"),
            fan_in=16, burst_pkts=8, epoch=2_000.0, duration=20_000.0,
        )
        src.start()
        sim.run(until=40_000.0)
        host.finalize()
        st = host.stats()
        assert st["delivered"] == st["ingress"]  # nothing lost at this scale


class TestReorderingCost:
    def test_spray_reorders_flowlet_mostly_not(self):
        spray = run_poisson("spray", rate=500_000)
        flowlet = run_poisson("flowlet", rate=500_000)
        spray_held = spray.stats()["reorder"]["held"]
        flowlet_held = flowlet.stats()["reorder"]["held"]
        assert spray_held > 5 * max(flowlet_held, 1)
