"""Tests for the vCPU run/stall model."""

import numpy as np
import pytest

from repro.dataplane import (
    CONTENDED_CORE,
    DEDICATED_CORE,
    SHARED_CORE,
    JitterParams,
    VCpu,
)


class TestJitterParams:
    def test_disabled_by_default(self):
        p = JitterParams()
        assert not p.enabled
        assert p.stall_fraction() == 0.0
        assert p.mean_stall() == 0.0

    def test_profiles_ordered_by_contention(self):
        assert (
            DEDICATED_CORE.stall_fraction()
            < SHARED_CORE.stall_fraction()
            < CONTENDED_CORE.stall_fraction()
        )

    def test_scaled_zero_disables(self):
        assert not SHARED_CORE.scaled(0.0).enabled

    def test_scaled_increases_stall_fraction(self):
        assert SHARED_CORE.scaled(2.0).stall_fraction() > SHARED_CORE.stall_fraction()

    def test_validation(self):
        with pytest.raises(ValueError):
            JitterParams(mean_run=0.0)
        with pytest.raises(ValueError):
            JitterParams(stall_median=-1.0)
        with pytest.raises(ValueError):
            SHARED_CORE.scaled(-1.0)


class TestVCpuNoJitter:
    def test_execute_serializes_work(self, sim):
        cpu = VCpu()
        s1, f1 = cpu.execute(0.0, 5.0)
        s2, f2 = cpu.execute(0.0, 3.0)
        assert (s1, f1) == (0.0, 5.0)
        assert (s2, f2) == (5.0, 8.0)
        assert cpu.busy_time == 8.0

    def test_idle_gap_respected(self):
        cpu = VCpu()
        cpu.execute(0.0, 2.0)
        s, f = cpu.execute(10.0, 1.0)
        assert (s, f) == (10.0, 11.0)

    def test_zero_cost(self):
        cpu = VCpu()
        s, f = cpu.execute(4.0, 0.0)
        assert s == f == 4.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            VCpu().execute(0.0, -1.0)

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            VCpu(params=SHARED_CORE)

    def test_utilization(self):
        cpu = VCpu()
        cpu.execute(0.0, 25.0)
        assert cpu.utilization(100.0) == pytest.approx(0.25)


class TestVCpuWithJitter:
    def test_work_conserved_stalls_only_delay(self, rng):
        cpu = VCpu(rng=rng, params=SHARED_CORE)
        total = 0.0
        t = 0.0
        for _ in range(500):
            s, f = cpu.execute(t, 1.0)
            assert f - s >= 1.0  # stall can only stretch, never shrink
            total += 1.0
            t = f
        assert cpu.busy_time == pytest.approx(total)

    def test_stalls_actually_occur(self, rng):
        cpu = VCpu(rng=rng, params=CONTENDED_CORE)
        stretched = 0
        t = 0.0
        for _ in range(2000):
            s, f = cpu.execute(t, 1.0)
            if f - s > 1.0:
                stretched += 1
            t = f
        assert stretched > 0
        assert cpu.stall_count > 0

    def test_long_run_stall_fraction_close_to_model(self, rng):
        params = JitterParams(mean_run=500.0, stall_median=100.0, stall_sigma=0.3)
        cpu = VCpu(rng=rng, params=params)
        work = 1.0
        t = 0.0
        n = 20_000
        for _ in range(n):
            _, f = cpu.execute(t, work)
            t = f
        # Wall time = work + stalls; fraction stalled should approximate
        # the analytic stall fraction.
        frac = 1.0 - (n * work) / t
        assert abs(frac - params.stall_fraction()) < 0.05

    def test_start_delayed_when_inside_stall(self):
        rng = np.random.default_rng(0)
        params = JitterParams(mean_run=10.0, stall_median=50.0, stall_sigma=0.01)
        cpu = VCpu(rng=rng, params=params)
        # Walk until we know a stall is scheduled, then request work inside it.
        stall_start = cpu._stall_start
        stall_end = cpu._stall_end
        s, f = cpu.execute(stall_start + 0.1, 1.0)
        assert s >= stall_end

    def test_set_params_disables_jitter(self, rng):
        cpu = VCpu(rng=rng, params=CONTENDED_CORE)
        cpu.set_params(JitterParams(), now=0.0)
        s, f = cpu.execute(0.0, 1000.0)
        assert f - s == 1000.0

    def test_set_params_enables_jitter(self, rng):
        cpu = VCpu(rng=rng)
        cpu.set_params(JitterParams(mean_run=10.0, stall_median=100.0), now=0.0)
        t, stretched = 0.0, False
        for _ in range(200):
            s, f = cpu.execute(t, 1.0)
            stretched = stretched or (f - s) > 1.0
            t = f
        assert stretched

    def test_available_at_reflects_pending_work(self, rng):
        cpu = VCpu()
        cpu.execute(0.0, 10.0)
        assert cpu.available_at(5.0) == 10.0
        assert cpu.available_at(20.0) == 20.0

    def test_determinism_same_seed(self):
        def run(seed):
            params = JitterParams(mean_run=20.0, stall_median=10.0)
            cpu = VCpu(rng=np.random.default_rng(seed), params=params)
            t = 0.0
            out = []
            for _ in range(100):
                s, f = cpu.execute(t, 2.0)
                out.append(f)
                t = f
            return out

        assert run(5) == run(5)
        assert run(5) != run(6)
