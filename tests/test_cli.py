"""Tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_ids_and_scale(self):
        args = build_parser().parse_args(["run", "F3", "T1", "--scale", "0.1"])
        assert args.ids == ["F3", "T1"]
        assert args.scale == 0.1


class TestCommands:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("F1", "F3", "T1", "A4"):
            assert exp_id in out

    def test_policies_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("single", "adaptive", "redundant2", "weighted"):
            assert name in out

    def test_capacity(self, capsys):
        assert main(["capacity", "--chain", "basic", "--size", "1554"]) == 0
        out = capsys.readouterr().out
        assert "pps/path" in out and "basic" in out

    def test_run_unknown_id(self, capsys):
        assert main(["run", "F99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_executes_experiment(self, capsys, monkeypatch):
        # Tiny scale so the test stays fast.
        assert main(["run", "F1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "F1" in out and "contended core" in out

    def test_demo(self, capsys):
        assert main(["demo", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "single-path" in out and "adaptive k=4" in out

    def test_faults_inline(self, capsys):
        assert main(["faults", "--duration", "15", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "mean_detection_lag" in out
        assert "arm" in out and "crash" in out

    def test_faults_spec_file(self, capsys, tmp_path):
        import json

        from repro import FaultSchedule

        sched = FaultSchedule().hang(0, at=4_000.0, duration=2_000.0)
        spec = tmp_path / "faults.json"
        spec.write_text(json.dumps(sched.to_dict()))
        assert main(["faults", "--spec", str(spec), "--duration", "15"]) == 0
        out = capsys.readouterr().out
        assert "delivered %" in out and "availability" in out


#: Fast inline flags shared by the sweep CLI tests (tiny durations).
SWEEP_FAST = ["--set", "chain=basic", "--set", "duration=2000",
              "--set", "warmup=300", "--set", "drain=2000",
              "--set", "n_flows=32", "--jobs", "1"]


class TestSweepCommand:
    def test_inline_axes_with_artifact(self, capsys, tmp_path):
        out_file = tmp_path / "sweep.json"
        rc = main(["sweep", "--axis", "policy=single,adaptive",
                   "--axis", "load=0.3,0.6", *SWEEP_FAST,
                   "--cache-dir", str(tmp_path / "cache"),
                   "--out", str(out_file), "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 cells" in out and "p99 (us)" in out
        assert "cache 0 hit / 4 miss" in out

        from repro.sweep import SweepResult

        sr = SweepResult.load(out_file)
        assert len(sr.cells) == 4
        assert sr.get(policy="single", load=0.6).config["n_paths"] == 1

    def test_second_run_hits_cache(self, capsys, tmp_path):
        argv = ["sweep", "--axis", "policy=single,adaptive", *SWEEP_FAST,
                "--cache-dir", str(tmp_path / "cache"), "--quiet"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "cache 2 hit / 0 miss" in capsys.readouterr().out

    def test_spec_file(self, capsys, tmp_path):
        import json

        spec = {
            "name": "file-sweep",
            "base": {"chain": "basic", "duration": 2000.0, "warmup": 300.0,
                     "drain": 2000.0, "n_flows": 32},
            "axes": [{"param": "load", "values": [0.3, 0.6]}],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        rc = main(["sweep", "--spec", str(path), "--jobs", "1",
                   "--no-cache", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "file-sweep" in out and "2 cells" in out

    def test_bad_axis_field_exits_2(self, capsys):
        assert main(["sweep", "--axis", "frobnicate=1,2"]) == 2
        assert "frobnicate" in capsys.readouterr().err

    def test_no_axes_exits_2(self, capsys):
        assert main(["sweep"]) == 2
        assert "nothing to sweep" in capsys.readouterr().err

    def test_missing_spec_file_exits_2(self, capsys, tmp_path):
        assert main(["sweep", "--spec", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestSloCommand:
    def test_single_run_prints_attainment(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        rc = main(["slo", "--objective", "p99 <= 1ms", "--load", "0.3",
                   "--duration", "10", "--window", "2",
                   "--out", str(out_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "attainment" in out
        import json

        rep = json.loads(out_file.read_text())
        assert rep["n_windows"] > 0
        assert 0.0 <= rep["attainment"] <= 1.0
        assert rep["spec"]["objectives"] == ["p99 <= 1000us"]

    def test_bad_objective_exits_2(self, capsys):
        assert main(["slo", "--objective", "p42 <= 1ms",
                     "--duration", "5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["slo", "--experiment", "SLO9"]) == 2
        assert "unknown SLO experiment" in capsys.readouterr().err


#: Fast inline scenario flags shared by the check CLI tests.
CHECK_FAST = ["--duration", "4", "--paths", "3"]


class TestUnifiedFlags:
    """The scenario-running commands share one flag vocabulary."""

    def test_scenario_flags_everywhere(self):
        parser = build_parser()
        for cmd in (["faults"], ["trace"], ["slo"], ["check", "run"],
                    ["check", "diff"]):
            args = parser.parse_args(cmd + ["--policy", "spray", "--paths",
                                            "2", "--load", "0.3",
                                            "--traffic", "onoff",
                                            "--duration", "5", "--seed",
                                            "9", "--spec", "x.json"])
            assert (args.policy, args.paths, args.load, args.traffic,
                    args.duration, args.seed, args.spec) == \
                ("spray", 2, 0.3, "onoff", 5.0, 9, "x.json")

    def test_per_command_load_defaults(self):
        parser = build_parser()
        assert parser.parse_args(["faults"]).load == 0.55
        assert parser.parse_args(["trace"]).load == 0.7
        assert parser.parse_args(["slo"]).load == 0.6
        assert parser.parse_args(["check", "run"]).load == 0.6

    def test_faults_out_writes_result(self, capsys, tmp_path):
        import json

        out = tmp_path / "faults.json"
        assert main(["faults", "--duration", "10", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema_version"]
        assert "availability" in payload

    def test_trace_spec_flag(self, capsys, tmp_path):
        import json

        from repro.bench.scenarios import ScenarioConfig

        cfg = ScenarioConfig(policy="spray", n_paths=2, duration=2000.0,
                             warmup=200.0, drain=1000.0, n_flows=16)
        spec = tmp_path / "scenario.json"
        spec.write_text(json.dumps(cfg.to_dict()))
        assert main(["trace", "--spec", str(spec), "--top", "1"]) == 0
        assert "stage breakdown" in capsys.readouterr().out

    def test_sweep_seed_override(self, capsys, tmp_path):
        import json

        out = tmp_path / "sweep.json"
        assert main(["sweep", "--axis", "policy=single", "--seed", "99",
                     *SWEEP_FAST, "--no-cache", "--quiet",
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["cells"][0]["config"]["seed"] == 99


class TestCheckCommand:
    def test_check_run_clean(self, capsys, tmp_path):
        import json

        out = tmp_path / "check.json"
        assert main(["check", "run", *CHECK_FAST, "--policy", "redundant2",
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "all invariants held" in printed
        for family in ("conservation", "dedup", "fifo", "flow_order",
                       "control", "clock"):
            assert family in printed
        payload = json.loads(out.read_text())
        assert payload["ok"] is True

    def test_check_run_spec_file(self, capsys, tmp_path):
        import json

        from repro.bench.scenarios import ScenarioConfig

        cfg = ScenarioConfig(policy="spray", n_paths=2, duration=2000.0,
                             warmup=200.0, drain=1000.0, n_flows=16)
        spec = tmp_path / "scenario.json"
        spec.write_text(json.dumps(cfg.to_dict()))
        assert main(["check", "run", "--spec", str(spec)]) == 0
        assert "spray" in capsys.readouterr().out

    def test_check_run_reports_violation(self, capsys, monkeypatch):
        from repro.core.replicator import Deduplicator

        original = Deduplicator.should_deliver
        monkeypatch.setattr(
            Deduplicator, "should_deliver",
            lambda self, packet: original(self, packet) or True)
        assert main(["check", "run", *CHECK_FAST,
                     "--policy", "redundant2"]) == 1
        assert "violation" in capsys.readouterr().out

    def test_check_fuzz(self, capsys, tmp_path):
        import json

        out = tmp_path / "fuzz.json"
        assert main(["check", "fuzz", "--cases", "2", "--seed", "11",
                     "--quiet", "--out", str(out)]) == 0
        assert "all invariants held" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["cases"] == 2 and payload["ok"] is True

    def test_check_diff(self, capsys):
        assert main(["check", "diff", *CHECK_FAST,
                     "--variant", "recycle_off",
                     "--variant", "check_armed"]) == 0
        out = capsys.readouterr().out
        assert "recycle_off" in out and "all variants identical" in out

    def test_check_selftest(self, capsys, tmp_path):
        import json

        out = tmp_path / "selftest.json"
        assert main(["check", "selftest", "--out", str(out)]) == 0
        assert "self-test PASSED" in capsys.readouterr().out
        assert json.loads(out.read_text())["ok"] is True

    def test_check_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check"])

    def test_check_run_bad_spec_exits_2(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["check", "run", "--spec", str(missing)]) == 2
        assert "error" in capsys.readouterr().err


class TestWhyCommand:
    # Inline scenarios default to 10ms warmup, so give the run enough
    # traffic time for a measurable post-warmup tail.
    WHY_FAST = ["--duration", "20", "--load", "0.8", "--seed", "42"]

    def test_why_renders_forensics(self, capsys):
        assert main(["why", "--policy", "single", "--paths", "1",
                     *self.WHY_FAST]) == 0
        out = capsys.readouterr().out
        assert "tail forensics" in out
        assert "scenario: single k=1" in out

    def test_why_json_histogram_sums(self, capsys):
        import json

        assert main(["why", "--policy", "single", "--paths", "1",
                     *self.WHY_FAST, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema_version"]
        assert sum(report["cause_histogram"].values()) == report["analyzed"]
        assert report["analyzed"] > 0

    def test_why_fault_attributes_fault_window(self, capsys):
        import json

        assert main(["why", "--policy", "rr", "--paths", "4",
                     *self.WHY_FAST, "--fault", "degrade",
                     "--fault-target", "1", "--fault-at", "0.5",
                     "--fault-duration", "8", "--fault-magnitude", "8",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["fault_windows"]
        assert report["cause_histogram"]["fault_window"] >= 1

    def test_why_out_writes_report(self, capsys, tmp_path):
        import json

        out = tmp_path / "why.json"
        assert main(["why", *self.WHY_FAST, "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema_version"]
        assert "cause_histogram" in payload

    def test_why_bad_quantile_exits_2(self, capsys):
        assert main(["why", *self.WHY_FAST, "--quantile", "101"]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_json_payload(self, capsys):
        import json

        assert main(["trace", "--duration", "20", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema_version"]
        assert set(report["stage_breakdown"]) == {
            "nic_ring", "vswitch_queue", "sched_stall", "nf_service",
            "reorder_buffer"}
        assert report["slowest"]


class TestLedgerCommand:
    RECORD_FAST = ["--duration", "20", "--load", "0.7", "--seed", "42"]

    def ledger_args(self, tmp_path):
        return ["--ledger", str(tmp_path / "LEDGER.jsonl")]

    def test_record_list_diff_round_trip(self, capsys, tmp_path):
        led = self.ledger_args(tmp_path)
        assert main(["ledger", "record", *self.RECORD_FAST, *led,
                     "--label", "base"]) == 0
        assert "recorded entry 0" in capsys.readouterr().out
        assert main(["ledger", "record", *self.RECORD_FAST, *led,
                     "--label", "cand"]) == 0
        capsys.readouterr()
        assert main(["ledger", "list", *led]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "cand" in out
        # Identical config+seed: the diff must pass the gate.
        assert main(["ledger", "diff", "base", "cand", *led]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_diff_json_and_regression_exit_code(self, capsys, tmp_path):
        import json

        led = self.ledger_args(tmp_path)
        assert main(["ledger", "record", *self.RECORD_FAST, *led,
                     "--label", "base"]) == 0
        capsys.readouterr()
        # Tamper a slower candidate straight into the JSONL.
        path = tmp_path / "LEDGER.jsonl"
        entry = json.loads(path.read_text().splitlines()[0])
        entry["label"] = "slow"
        entry["exact"] = {k: v * 2.0 for k, v in entry["exact"].items()}
        entry["latency_samples"] = [v * 2.0
                                    for v in entry["latency_samples"]]
        with open(path, "a") as fh:
            fh.write(json.dumps(entry) + "\n")
        assert main(["ledger", "diff", "base", "slow", *led,
                     "--json"]) == 1
        diff = json.loads(capsys.readouterr().out)
        assert diff["ok"] is False
        assert "p99" in diff["regressions"]

    def test_record_kernel_from_bench_json(self, capsys, tmp_path):
        import json

        bench = tmp_path / "BENCH_KERNEL.json"
        bench.write_text(json.dumps({"full": {"pps": 123456.0}}))
        led = self.ledger_args(tmp_path)
        assert main(["ledger", "record", *self.RECORD_FAST, *led,
                     "--label", "k", "--kernel-from", str(bench)]) == 0
        capsys.readouterr()
        from repro.obs.ledger import load_ledger

        entries = load_ledger(tmp_path / "LEDGER.jsonl")
        assert entries[-1]["kernel_pps"] == 123456.0

    def test_list_empty_ledger(self, capsys, tmp_path):
        assert main(["ledger", "list",
                     *self.ledger_args(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_diff_unknown_ref_exits_2(self, capsys, tmp_path):
        led = self.ledger_args(tmp_path)
        assert main(["ledger", "record", *self.RECORD_FAST, *led,
                     "--label", "base"]) == 0
        capsys.readouterr()
        assert main(["ledger", "diff", "base", "nope", *led]) == 2
        assert "no ledger entry" in capsys.readouterr().err

    def test_ledger_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ledger"])
