"""Tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_ids_and_scale(self):
        args = build_parser().parse_args(["run", "F3", "T1", "--scale", "0.1"])
        assert args.ids == ["F3", "T1"]
        assert args.scale == 0.1


class TestCommands:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("F1", "F3", "T1", "A4"):
            assert exp_id in out

    def test_policies_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("single", "adaptive", "redundant2", "weighted"):
            assert name in out

    def test_capacity(self, capsys):
        assert main(["capacity", "--chain", "basic", "--size", "1554"]) == 0
        out = capsys.readouterr().out
        assert "pps/path" in out and "basic" in out

    def test_run_unknown_id(self, capsys):
        assert main(["run", "F99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_executes_experiment(self, capsys, monkeypatch):
        # Tiny scale so the test stays fast.
        assert main(["run", "F1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "F1" in out and "contended core" in out

    def test_demo(self, capsys):
        assert main(["demo", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "single-path" in out and "adaptive k=4" in out

    def test_faults_inline(self, capsys):
        assert main(["faults", "--duration", "15", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "mean_detection_lag" in out
        assert "arm" in out and "crash" in out

    def test_faults_spec_file(self, capsys, tmp_path):
        import json

        from repro import FaultSchedule

        sched = FaultSchedule().hang(0, at=4_000.0, duration=2_000.0)
        spec = tmp_path / "faults.json"
        spec.write_text(json.dumps(sched.to_dict()))
        assert main(["faults", "--spec", str(spec), "--duration", "15"]) == 0
        out = capsys.readouterr().out
        assert "delivered %" in out and "availability" in out


#: Fast inline flags shared by the sweep CLI tests (tiny durations).
SWEEP_FAST = ["--set", "chain=basic", "--set", "duration=2000",
              "--set", "warmup=300", "--set", "drain=2000",
              "--set", "n_flows=32", "--jobs", "1"]


class TestSweepCommand:
    def test_inline_axes_with_artifact(self, capsys, tmp_path):
        out_file = tmp_path / "sweep.json"
        rc = main(["sweep", "--axis", "policy=single,adaptive",
                   "--axis", "load=0.3,0.6", *SWEEP_FAST,
                   "--cache-dir", str(tmp_path / "cache"),
                   "--out", str(out_file), "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 cells" in out and "p99 (us)" in out
        assert "cache 0 hit / 4 miss" in out

        from repro.sweep import SweepResult

        sr = SweepResult.load(out_file)
        assert len(sr.cells) == 4
        assert sr.get(policy="single", load=0.6).config["n_paths"] == 1

    def test_second_run_hits_cache(self, capsys, tmp_path):
        argv = ["sweep", "--axis", "policy=single,adaptive", *SWEEP_FAST,
                "--cache-dir", str(tmp_path / "cache"), "--quiet"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "cache 2 hit / 0 miss" in capsys.readouterr().out

    def test_spec_file(self, capsys, tmp_path):
        import json

        spec = {
            "name": "file-sweep",
            "base": {"chain": "basic", "duration": 2000.0, "warmup": 300.0,
                     "drain": 2000.0, "n_flows": 32},
            "axes": [{"param": "load", "values": [0.3, 0.6]}],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        rc = main(["sweep", "--spec", str(path), "--jobs", "1",
                   "--no-cache", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "file-sweep" in out and "2 cells" in out

    def test_bad_axis_field_exits_2(self, capsys):
        assert main(["sweep", "--axis", "frobnicate=1,2"]) == 2
        assert "frobnicate" in capsys.readouterr().err

    def test_no_axes_exits_2(self, capsys):
        assert main(["sweep"]) == 2
        assert "nothing to sweep" in capsys.readouterr().err

    def test_missing_spec_file_exits_2(self, capsys, tmp_path):
        assert main(["sweep", "--spec", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestSloCommand:
    def test_single_run_prints_attainment(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        rc = main(["slo", "--objective", "p99 <= 1ms", "--load", "0.3",
                   "--duration", "10", "--window", "2",
                   "--out", str(out_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "attainment" in out
        import json

        rep = json.loads(out_file.read_text())
        assert rep["n_windows"] > 0
        assert 0.0 <= rep["attainment"] <= 1.0
        assert rep["spec"]["objectives"] == ["p99 <= 1000us"]

    def test_bad_objective_exits_2(self, capsys):
        assert main(["slo", "--objective", "p42 <= 1ms",
                     "--duration", "5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["slo", "--experiment", "SLO9"]) == 2
        assert "unknown SLO experiment" in capsys.readouterr().err
