"""Tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_ids_and_scale(self):
        args = build_parser().parse_args(["run", "F3", "T1", "--scale", "0.1"])
        assert args.ids == ["F3", "T1"]
        assert args.scale == 0.1


class TestCommands:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("F1", "F3", "T1", "A4"):
            assert exp_id in out

    def test_policies_lists_registry(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("single", "adaptive", "redundant2", "weighted"):
            assert name in out

    def test_capacity(self, capsys):
        assert main(["capacity", "--chain", "basic", "--size", "1554"]) == 0
        out = capsys.readouterr().out
        assert "pps/path" in out and "basic" in out

    def test_run_unknown_id(self, capsys):
        assert main(["run", "F99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_executes_experiment(self, capsys, monkeypatch):
        # Tiny scale so the test stays fast.
        assert main(["run", "F1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "F1" in out and "contended core" in out

    def test_demo(self, capsys):
        assert main(["demo", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "single-path" in out and "adaptive k=4" in out

    def test_faults_inline(self, capsys):
        assert main(["faults", "--duration", "15", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "mean_detection_lag" in out
        assert "arm" in out and "crash" in out

    def test_faults_spec_file(self, capsys, tmp_path):
        import json

        from repro import FaultSchedule

        sched = FaultSchedule().hang(0, at=4_000.0, duration=2_000.0)
        spec = tmp_path / "faults.json"
        spec.write_text(json.dumps(sched.to_dict()))
        assert main(["faults", "--spec", str(spec), "--duration", "15"]) == 0
        out = capsys.readouterr().out
        assert "delivered %" in out and "availability" in out
