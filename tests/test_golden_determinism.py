"""Golden-result determinism tests for the optimized kernel.

The hot-path work (batched poller service, pooled packets, deferred
metric folding, inlined fast paths) is only admissible because it is
*value-invisible*: the same seed must produce a bit-identical
``SimulationResult`` payload whatever the observation settings
(telemetry on/off), fault schedule presence, or sweep worker count.
These tests pin that contract so future optimizations cannot silently
trade determinism for speed.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro import FaultSchedule, ScenarioConfig, Telemetry
from repro.sweep import Axis, SweepSpec, run_sweep

#: Small but non-trivial scenario: multi-path, adaptive policy (flowlet
#: + health + replication machinery all exercised), jittered cores.
BASE = dict(
    policy="adaptive",
    n_paths=4,
    load=0.7,
    duration=8_000.0,
    warmup=1_000.0,
    drain=4_000.0,
    seed=42,
)


def payload(result) -> str:
    """Canonical JSON payload of a result (the bit-identity unit)."""
    return json.dumps(result.to_dict(), sort_keys=True)


class TestGoldenDeterminism:
    def test_same_seed_same_payload(self):
        a = repro.run(ScenarioConfig(**BASE))
        b = repro.run(ScenarioConfig(**BASE))
        assert payload(a) == payload(b)

    def test_different_seed_differs(self):
        # Guards against the oracle comparing trivially equal payloads.
        a = repro.run(ScenarioConfig(**BASE))
        b = repro.run(ScenarioConfig(**{**BASE, "seed": 43}))
        assert payload(a) != payload(b)

    def test_telemetry_is_invisible(self):
        off = repro.run(ScenarioConfig(**BASE))
        on = repro.run(ScenarioConfig(**BASE), telemetry=Telemetry())
        assert payload(off) == payload(on)

    def test_faulted_run_is_deterministic(self):
        sched = FaultSchedule().crash(path=1, at=3_000.0, duration=2_000.0)
        a = repro.run(ScenarioConfig(**BASE), faults=sched)
        sched2 = FaultSchedule().crash(path=1, at=3_000.0, duration=2_000.0)
        b = repro.run(ScenarioConfig(**BASE), faults=sched2)
        assert payload(a) == payload(b)
        assert a.availability is not None

    def test_faults_kwarg_matches_config_field(self):
        sched = FaultSchedule().hang(path=2, at=2_000.0, duration=1_500.0)
        via_kwarg = repro.run(ScenarioConfig(**BASE), faults=sched)
        sched2 = FaultSchedule().hang(path=2, at=2_000.0, duration=1_500.0)
        via_config = repro.run(ScenarioConfig(faults=sched2, **BASE))
        assert payload(via_kwarg) == payload(via_config)

    def test_jobs_1_and_4_identical(self, tmp_path):
        spec = SweepSpec(
            name="determinism-smoke",
            base=dict(
                policy="adaptive", load=0.6, duration=6_000.0,
                warmup=1_000.0, drain=3_000.0, seed=7,
            ),
            axes=[Axis("policy", ["single", "rr", "adaptive"]),
                  Axis("load", [0.4, 0.7])],
        )
        serial = run_sweep(spec, jobs=1, cache=False, progress=None)
        parallel = run_sweep(spec, jobs=4, cache=False, progress=None)
        assert len(serial.cells) == len(parallel.cells) == 6
        for a, b in zip(serial.cells, parallel.cells):
            assert a.params == b.params
            assert a.summary.to_dict() == b.summary.to_dict()
            assert a.exact == b.exact
            assert a.stats == b.stats


class TestForensicsDeterminism:
    def test_armed_forensics_is_invisible_to_core_metrics(self):
        # Forensics is pure post-processing over telemetry: an armed run
        # must simulate the exact same trajectory as a detached one.
        # Only the forensics_report key may appear on top.
        baseline = repro.run(ScenarioConfig(**BASE))
        armed = repro.run(ScenarioConfig(**BASE),
                          repro.RunOptions(forensics=True))
        d = armed.to_dict()
        assert d.pop("forensics_report") is not None
        assert json.dumps(d, sort_keys=True) == payload(baseline)

    def test_forensics_report_same_seed_byte_identical(self):
        def once():
            result = repro.run(ScenarioConfig(**BASE),
                               repro.RunOptions(forensics=True))
            return json.dumps(result.forensics_report, sort_keys=True)
        assert once() == once()

    def test_cause_labels_stable_across_sweep_jobs(self, tmp_path):
        # A telemetry sweep leaves a forensics.json per cell; worker
        # count must change neither the cell payloads nor one cause
        # label anywhere in the bundles.
        spec_kw = dict(
            name="forensics-jobs-smoke",
            base=dict(policy="adaptive", load=0.8, duration=6_000.0,
                      warmup=1_000.0, drain=3_000.0, seed=7),
            axes=[Axis("policy", ["single", "adaptive"]),
                  Axis("load", [0.6, 0.85])],
        )
        serial = run_sweep(SweepSpec(**spec_kw), jobs=1, cache=False,
                           telemetry_dir=str(tmp_path / "j1"))
        parallel = run_sweep(SweepSpec(**spec_kw), jobs=4, cache=False,
                             telemetry_dir=str(tmp_path / "j4"))
        assert len(serial.cells) == len(parallel.cells) == 4
        for a, b in zip(serial.cells, parallel.cells):
            assert a.summary.to_dict() == b.summary.to_dict()
        bundles = sorted(p.name for p in (tmp_path / "j1").iterdir())
        assert bundles == sorted(p.name for p in (tmp_path / "j4").iterdir())
        for key in bundles:
            f1 = (tmp_path / "j1" / key / "forensics.json").read_text()
            f4 = (tmp_path / "j4" / key / "forensics.json").read_text()
            assert f1 == f4, f"cell {key} forensics differ across jobs"
            assert json.loads(f1)["cause_histogram"]


#: Autotuning spec for the SLO determinism tests: tight enough to force
#: decisions, small windows so several close inside the short run.
SLO_KW = dict(
    objectives=("p99 <= 150us", "delivery >= 99%"),
    window=1_000.0,
    autotune=True,
    start_paths=1,
    cooldown=2_000.0,
    hold_windows=3,
    margin=0.7,
)


def slo_payload(result) -> str:
    return json.dumps(result.slo_report, sort_keys=True)


class TestSloDeterminism:
    def test_same_seed_same_slo_report(self):
        a = repro.run(ScenarioConfig(**BASE), slo=repro.SloSpec(**SLO_KW))
        b = repro.run(ScenarioConfig(**BASE), slo=repro.SloSpec(**SLO_KW))
        assert a.slo_report["decisions"], "spec must exercise the autotuner"
        assert slo_payload(a) == slo_payload(b)
        assert payload(a) == payload(b)

    def test_telemetry_is_invisible_to_slo_report(self):
        bare = repro.run(ScenarioConfig(**BASE), slo=repro.SloSpec(**SLO_KW))
        traced = repro.run(ScenarioConfig(**BASE),
                           slo=repro.SloSpec(**SLO_KW), telemetry=Telemetry())
        assert slo_payload(bare) == slo_payload(traced)
        assert (bare.slo_report["decisions"]
                == traced.slo_report["decisions"])

    def test_passive_slo_is_invisible_to_core_metrics(self):
        # A non-autotuning spec only *observes*: the simulated trajectory
        # (and thus every other result field) must be bit-identical to
        # the same run without an SLO attached.
        baseline = repro.run(ScenarioConfig(**BASE))
        spec = repro.SloSpec(objectives=("p99 <= 200us",), window=1_000.0)
        observed = repro.run(ScenarioConfig(**BASE), slo=spec)
        d = observed.to_dict()
        assert d.pop("slo_report") is not None
        # The embedded config legitimately records the spec; every
        # *measured* field must match bit for bit.
        assert d["config"].pop("slo") == spec.to_dict()
        e = baseline.to_dict()
        e["config"].pop("slo")
        assert json.dumps(d, sort_keys=True) == json.dumps(e, sort_keys=True)

    def test_faulted_autotuned_run_is_deterministic(self):
        def once():
            sched = FaultSchedule().crash(path=0, at=3_000.0,
                                          duration=2_000.0)
            return repro.run(
                ScenarioConfig(**BASE), faults=sched,
                slo=repro.SloSpec(**{**SLO_KW, "start_paths": 2,
                                     "min_paths": 2}),
            )
        assert payload(once()) == payload(once())


class TestDeprecationShims:
    # The pre-2.0 shims (``repro.bench.scenarios.simulate`` and the
    # ``repro.sim.trace`` alias) completed the documented deprecation
    # cycle -- warned for a minor release, removed on the major bump
    # (docs/API.md).  Pin the removal so they do not creep back.
    def test_simulate_shim_removed(self):
        import repro.bench.scenarios as scenarios

        assert not hasattr(scenarios, "simulate")
        assert "simulate" not in repro.bench.__all__

    def test_trace_alias_removed(self):
        import importlib
        import sys

        sys.modules.pop("repro.sim.trace", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.sim.trace")
        # The real home keeps working.
        from repro.obs.span import SpanTracer, Tracer

        assert Tracer is SpanTracer

    def test_run_rejects_positional_telemetry(self):
        with pytest.raises(TypeError):
            repro.run(ScenarioConfig(**BASE), Telemetry())  # noqa: B026
