"""Golden-result determinism tests for the optimized kernel.

The hot-path work (batched poller service, pooled packets, deferred
metric folding, inlined fast paths) is only admissible because it is
*value-invisible*: the same seed must produce a bit-identical
``SimulationResult`` payload whatever the observation settings
(telemetry on/off), fault schedule presence, or sweep worker count.
These tests pin that contract so future optimizations cannot silently
trade determinism for speed.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro import FaultSchedule, ScenarioConfig, Telemetry
from repro.sweep import Axis, SweepSpec, run_sweep

#: Small but non-trivial scenario: multi-path, adaptive policy (flowlet
#: + health + replication machinery all exercised), jittered cores.
BASE = dict(
    policy="adaptive",
    n_paths=4,
    load=0.7,
    duration=8_000.0,
    warmup=1_000.0,
    drain=4_000.0,
    seed=42,
)


def payload(result) -> str:
    """Canonical JSON payload of a result (the bit-identity unit)."""
    return json.dumps(result.to_dict(), sort_keys=True)


class TestGoldenDeterminism:
    def test_same_seed_same_payload(self):
        a = repro.run(ScenarioConfig(**BASE))
        b = repro.run(ScenarioConfig(**BASE))
        assert payload(a) == payload(b)

    def test_different_seed_differs(self):
        # Guards against the oracle comparing trivially equal payloads.
        a = repro.run(ScenarioConfig(**BASE))
        b = repro.run(ScenarioConfig(**{**BASE, "seed": 43}))
        assert payload(a) != payload(b)

    def test_telemetry_is_invisible(self):
        off = repro.run(ScenarioConfig(**BASE))
        on = repro.run(ScenarioConfig(**BASE), telemetry=Telemetry())
        assert payload(off) == payload(on)

    def test_faulted_run_is_deterministic(self):
        sched = FaultSchedule().crash(path=1, at=3_000.0, duration=2_000.0)
        a = repro.run(ScenarioConfig(**BASE), faults=sched)
        sched2 = FaultSchedule().crash(path=1, at=3_000.0, duration=2_000.0)
        b = repro.run(ScenarioConfig(**BASE), faults=sched2)
        assert payload(a) == payload(b)
        assert a.availability is not None

    def test_faults_kwarg_matches_config_field(self):
        sched = FaultSchedule().hang(path=2, at=2_000.0, duration=1_500.0)
        via_kwarg = repro.run(ScenarioConfig(**BASE), faults=sched)
        sched2 = FaultSchedule().hang(path=2, at=2_000.0, duration=1_500.0)
        via_config = repro.run(ScenarioConfig(faults=sched2, **BASE))
        assert payload(via_kwarg) == payload(via_config)

    def test_jobs_1_and_4_identical(self, tmp_path):
        spec = SweepSpec(
            name="determinism-smoke",
            base=dict(
                policy="adaptive", load=0.6, duration=6_000.0,
                warmup=1_000.0, drain=3_000.0, seed=7,
            ),
            axes=[Axis("policy", ["single", "rr", "adaptive"]),
                  Axis("load", [0.4, 0.7])],
        )
        serial = run_sweep(spec, jobs=1, cache=False, progress=None)
        parallel = run_sweep(spec, jobs=4, cache=False, progress=None)
        assert len(serial.cells) == len(parallel.cells) == 6
        for a, b in zip(serial.cells, parallel.cells):
            assert a.params == b.params
            assert a.summary.to_dict() == b.summary.to_dict()
            assert a.exact == b.exact
            assert a.stats == b.stats


class TestDeprecationShims:
    def test_simulate_shim_warns_and_matches(self):
        from repro.bench.scenarios import simulate

        with pytest.warns(DeprecationWarning, match="repro.run"):
            legacy = simulate(ScenarioConfig(**BASE))
        assert payload(legacy) == payload(repro.run(ScenarioConfig(**BASE)))

    def test_run_rejects_positional_telemetry(self):
        with pytest.raises(TypeError):
            repro.run(ScenarioConfig(**BASE), Telemetry())  # noqa: B026
