"""Hygiene tests: examples compile, public modules are documented,
documentation files exist and cover the required content."""

import importlib
import pathlib
import py_compile
import pkgutil

import pytest

import repro

ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


class TestExamples:
    def test_there_are_enough_examples(self):
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_has_docstring_and_main(self, path):
        src = path.read_text()
        assert src.lstrip().startswith(('"""', '#!')), path
        assert '__main__' in src, f"{path} is not runnable as a script"

    def test_quickstart_exists(self):
        assert (ROOT / "examples" / "quickstart.py").exists()


def _all_repro_modules():
    out = []
    for mod in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if mod.name == "repro.__main__":
            continue  # importing it runs the CLI
        out.append(mod.name)
    return out


class TestModuleDocs:
    @pytest.mark.parametrize("name", _all_repro_modules())
    def test_every_module_has_a_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, name

    def test_public_api_objects_documented(self):
        for attr in repro.__all__:
            if attr.startswith("__"):
                continue
            obj = getattr(repro, attr)
            if isinstance(obj, (int, float, str, tuple, list, dict)):
                continue  # constants
            assert getattr(obj, "__doc__", None), f"{attr} lacks a docstring"


class TestDocumentationFiles:
    @pytest.mark.parametrize("fname", ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                                       "docs/MODEL.md", "docs/API.md",
                                       "docs/TUTORIAL.md"])
    def test_exists_and_nonempty(self, fname):
        path = ROOT / fname
        assert path.exists(), fname
        assert len(path.read_text()) > 500, fname

    def test_design_notes_source_text_mismatch(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "mismatch" in text.lower()
        assert "title" in text.lower()

    def test_experiments_covers_every_registered_experiment(self):
        from repro.bench.figures import ALL_EXPERIMENTS

        text = (ROOT / "EXPERIMENTS.md").read_text()
        for exp_id in ALL_EXPERIMENTS:
            assert f"| {exp_id} " in text, f"{exp_id} missing from EXPERIMENTS.md"

    def test_every_experiment_has_a_bench_file(self):
        from repro.bench.figures import ALL_EXPERIMENTS

        bench_names = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for exp_id in ALL_EXPERIMENTS:
            prefix = f"bench_{exp_id.lower()}"
            assert any(n.startswith(prefix) for n in bench_names), exp_id
