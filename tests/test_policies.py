"""Tests for the path-selection policy zoo."""

import pytest

from repro.core import POLICY_NAMES, make_policy
from repro.core.detector import DetectorConfig, StragglerDetector
from repro.core.policies import (
    AdaptiveMultipath,
    FlowletSwitching,
    LeastLoaded,
    PowerOfTwo,
    RandomHash,
    RandomSpray,
    RedundantK,
    RoundRobin,
    SinglePath,
)
from repro.dataplane.path import DataPath, PathConfig
from repro.elements import Chain, Delay
from repro.net.packet import FiveTuple


@pytest.fixture
def paths(sim, rng):
    return [
        DataPath(sim, i, Chain([Delay("d", base_cost=1.0)]), lambda p: None,
                 rng=rng, config=PathConfig(batch_size=1))
        for i in range(4)
    ]


class TestFactory:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_all_registered_names_build(self, name, rng):
        p = make_policy(name, rng=rng)
        assert p is not None

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_policy("bogus")

    def test_randomized_need_rng(self):
        with pytest.raises(ValueError):
            make_policy("spray")
        with pytest.raises(ValueError):
            make_policy("po2")


class TestSinglePath:
    def test_always_same_path(self, paths, mk_packet):
        pol = SinglePath(path_id=2)
        assert all(pol.select(mk_packet(seq=i), paths, 0.0) == [2] for i in range(10))
        assert not SinglePath.needs_reorder


class TestRandomHash:
    def test_flow_affinity(self, paths, factory):
        pol = RandomHash()
        ft = FiveTuple(1, 2, 999, 80)
        picks = {
            pol.select(factory.make(ft, 100, 0.0), paths, 0.0)[0] for _ in range(20)
        }
        assert len(picks) == 1
        assert not RandomHash.needs_reorder

    def test_spreads_flows(self, paths, factory):
        pol = RandomHash()
        picks = {
            pol.select(factory.make(FiveTuple(1, 2, sp, 80), 100, 0.0), paths, 0.0)[0]
            for sp in range(200)
        }
        assert picks == {0, 1, 2, 3}

    def test_salt_changes_mapping(self, paths, factory):
        ft = FiveTuple(1, 2, 999, 80)
        p = factory.make(ft, 100, 0.0)
        picks = {
            RandomHash(salt=s).select(p, paths, 0.0)[0] for s in range(64)
        }
        assert len(picks) > 1


class TestRoundRobin:
    def test_cycles(self, paths, mk_packet):
        pol = RoundRobin()
        picks = [pol.select(mk_packet(seq=i), paths, 0.0)[0] for i in range(8)]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]


class TestRandomSpray:
    def test_uniform_coverage(self, paths, mk_packet, rng):
        pol = RandomSpray(rng)
        picks = [pol.select(mk_packet(seq=i), paths, 0.0)[0] for i in range(400)]
        for pid in range(4):
            assert 50 < picks.count(pid) < 150

    def test_adapts_to_path_count_change(self, sim, rng, mk_packet):
        pol = RandomSpray(rng)
        p2 = [
            DataPath(sim, i, Chain([Delay("d")]), lambda p: None, rng=rng)
            for i in range(2)
        ]
        picks = {pol.select(mk_packet(seq=i), p2, 0.0)[0] for i in range(50)}
        assert picks <= {0, 1}


class TestLeastLoadedAndPo2:
    def test_leastload_avoids_backlog(self, paths, mk_packet):
        pol = LeastLoaded()
        for i in range(20):
            pkt = mk_packet(seq=i)
            pkt.t_enq = 0.0
            paths[0].queue._q.append(pkt)
        assert pol.select(mk_packet(), paths, 0.0)[0] != 0

    def test_po2_single_path_degenerate(self, sim, rng, mk_packet):
        pol = PowerOfTwo(rng)
        one = [DataPath(sim, 0, Chain([Delay("d")]), lambda p: None, rng=rng)]
        assert pol.select(mk_packet(), one, 0.0) == [0]

    def test_po2_prefers_emptier_of_two(self, paths, mk_packet, rng):
        pol = PowerOfTwo(rng)
        # Hugely backlog path 0; over many picks it should rarely win.
        for i in range(50):
            pkt = mk_packet(seq=i)
            pkt.t_enq = 0.0
            paths[0].queue._q.append(pkt)
        picks = [pol.select(mk_packet(seq=i), paths, 0.0)[0] for i in range(200)]
        assert picks.count(0) < 20


class TestFlowletSwitching:
    def test_affinity_within_flowlet(self, paths, mk_packet):
        pol = FlowletSwitching(timeout=100.0)
        first = pol.select(mk_packet(flow_id=7), paths, 0.0)[0]
        second = pol.select(mk_packet(flow_id=7, seq=1), paths, 50.0)[0]
        assert first == second

    def test_boundary_can_move(self, paths, mk_packet):
        pol = FlowletSwitching(timeout=10.0)
        first = pol.select(mk_packet(flow_id=7), paths, 0.0)[0]
        # Backlog the first path, then exceed the flowlet gap.
        for i in range(30):
            pkt = mk_packet(seq=i)
            pkt.t_enq = 0.0
            paths[first].queue._q.append(pkt)
        moved = pol.select(mk_packet(flow_id=7, seq=1), paths, 1000.0)[0]
        assert moved != first

    def test_flowless_packets_least_loaded(self, paths, mk_packet):
        pol = FlowletSwitching()
        pkt = mk_packet(flow_id=-1)
        assert pol.select(pkt, paths, 0.0)[0] in range(4)


class TestRedundantK:
    def test_returns_r_distinct_paths(self, paths, mk_packet):
        pol = RedundantK(r=3)
        sel = pol.select(mk_packet(), paths, 0.0)
        assert len(sel) == 3
        assert len(set(sel)) == 3

    def test_r_capped_by_path_count(self, sim, rng, mk_packet):
        pol = RedundantK(r=4)
        two = [
            DataPath(sim, i, Chain([Delay("d")]), lambda p: None, rng=rng)
            for i in range(2)
        ]
        assert len(pol.select(mk_packet(), two, 0.0)) == 2

    def test_primary_rotates(self, paths, mk_packet):
        pol = RedundantK(r=2)
        primaries = [pol.select(mk_packet(seq=i), paths, 0.0)[0] for i in range(4)]
        assert primaries == [0, 1, 2, 3]

    def test_r_below_two_rejected(self):
        with pytest.raises(ValueError):
            RedundantK(r=1)


class TestAdaptiveMultipath:
    def test_flow_affinity_while_healthy(self, paths, mk_packet):
        pol = AdaptiveMultipath(replication_budget=0.0)
        a = pol.select(mk_packet(flow_id=1), paths, 0.0)[0]
        b = pol.select(mk_packet(flow_id=1, seq=1), paths, 10.0)[0]
        assert a == b

    def test_mid_flowlet_escape_from_straggler(self, paths, mk_packet):
        pol = AdaptiveMultipath(
            replication_budget=0.0,
            detector=StragglerDetector(DetectorConfig(hol_threshold=20.0)),
        )
        first = pol.select(mk_packet(flow_id=1), paths, 0.0)[0]
        # Make `first` a straggler via head-of-line wait.
        stuck = mk_packet(seq=99)
        stuck.t_enq = 0.0
        paths[first].queue._q.append(stuck)
        moved = pol.select(mk_packet(flow_id=1, seq=1), paths, 50.0)[0]
        assert moved != first
        assert pol.rerouted_flowlets == 1

    def test_replicates_critical_packets_within_budget(self, paths, mk_packet):
        pol = AdaptiveMultipath(replication_budget=1.0, critical_size=10_000)
        sel = pol.select(mk_packet(flow_id=1, size=100), paths, 0.0)
        assert len(sel) == 2
        assert sel[0] != sel[1]

    def test_budget_limits_replication(self, paths, mk_packet):
        pol = AdaptiveMultipath(replication_budget=0.1, critical_size=10_000)
        n_replicated = 0
        for i in range(200):
            sel = pol.select(mk_packet(flow_id=i, size=100), paths, float(i))
            n_replicated += len(sel) == 2
        assert n_replicated <= 0.1 * 200 + 2

    def test_large_packets_not_replicated(self, paths, mk_packet):
        pol = AdaptiveMultipath(replication_budget=1.0, critical_size=300)
        sel = pol.select(mk_packet(flow_id=1, size=1500), paths, 0.0)
        assert len(sel) == 1

    def test_priority_forces_replication_eligibility(self, paths, mk_packet):
        pol = AdaptiveMultipath(replication_budget=1.0, critical_size=0)
        sel = pol.select(mk_packet(flow_id=1, size=1500, priority=1), paths, 0.0)
        assert len(sel) == 2

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            AdaptiveMultipath(replication_budget=1.5)
