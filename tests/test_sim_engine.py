"""Tests for the event loop (repro.sim.engine)."""

import pytest

from repro.sim import Simulator, SimulationError, StopSimulation
from repro.sim.errors import EmptySchedule
from repro.sim.engine import LOW, NORMAL, URGENT


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=100.0).now == 100.0

    def test_peek_empty(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_returns_next_time(self, sim):
        sim.call_at(5.0, lambda: None)
        sim.call_at(3.0, lambda: None)
        assert sim.peek() == 3.0


class TestCallbacks:
    def test_call_at_runs_at_time(self, sim):
        seen = []
        sim.call_at(7.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.5]

    def test_call_in_relative(self, sim):
        seen = []
        sim.call_at(10.0, lambda: sim.call_in(5.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [15.0]

    def test_args_passed(self, sim):
        seen = []
        sim.call_at(1.0, seen.append, "x")
        sim.run()
        assert seen == ["x"]

    def test_fifo_order_same_time(self, sim):
        seen = []
        for i in range(10):
            sim.call_at(1.0, seen.append, i)
        sim.run()
        assert seen == list(range(10))

    def test_priority_order_same_time(self, sim):
        seen = []
        sim.call_at(1.0, seen.append, "low", priority=LOW)
        sim.call_at(1.0, seen.append, "normal", priority=NORMAL)
        sim.call_at(1.0, seen.append, "urgent", priority=URGENT)
        sim.run()
        assert seen == ["urgent", "normal", "low"]

    def test_cannot_schedule_in_past(self, sim):
        sim.call_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_in(-1.0, lambda: None)


class TestRun:
    def test_run_until_time_stops_clock_there(self, sim):
        sim.call_at(100.0, lambda: None)
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_run_until_excludes_boundary_events(self, sim):
        seen = []
        sim.call_at(50.0, seen.append, 1)
        sim.run(until=50.0)
        assert seen == []
        sim.run()
        assert seen == [1]

    def test_run_until_past_raises(self, sim):
        sim.call_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=5.0)

    def test_run_until_event_returns_value(self, sim):
        ev = sim.event()
        sim.call_at(3.0, ev.succeed, 42)
        assert sim.run(until=ev) == 42
        assert sim.now == 3.0

    def test_run_until_failed_event_raises(self, sim):
        ev = sim.event()
        sim.call_at(3.0, ev.fail, RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run(until=ev)

    def test_run_until_never_triggered_event_raises(self, sim):
        ev = sim.event()
        sim.call_at(1.0, lambda: None)
        with pytest.raises(EmptySchedule):
            sim.run(until=ev)

    def test_stop_halts_run(self, sim):
        sim.call_at(1.0, lambda: sim.stop("halted"))
        sim.call_at(2.0, lambda: pytest.fail("should not run"))
        assert sim.run() == "halted"

    def test_step_empty_raises(self, sim):
        with pytest.raises(EmptySchedule):
            sim.step()

    def test_reentrant_run_rejected(self, sim):
        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.call_at(1.0, reenter)
        sim.run()

    def test_processed_count(self, sim):
        for i in range(5):
            sim.call_at(float(i), lambda: None)
        sim.run()
        assert sim.processed_count == 5


class TestDeterminism:
    def test_same_schedule_same_trajectory(self):
        def build():
            sim = Simulator()
            seen = []
            for i in range(100):
                sim.call_at(float(i % 7), seen.append, i)
            sim.run()
            return seen

        assert build() == build()
