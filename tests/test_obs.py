"""Tests for the repro.obs observability subsystem.

Covers the span tracer (including the per-packet index), the metrics
registry and sampler, instant-event derivation, the exporters (Chrome
trace + JSONL + bundle), the terminal reports, the CLI subcommands, the
sweep telemetry persistence -- and the two load-bearing guarantees:
leaf-stage spans partition end-to-end latency exactly, and results are
bit-identical with telemetry on or off.
"""

import json

import pytest

from repro.bench.scenarios import ScenarioConfig, run_scenario
from repro.faults import FaultSchedule
from repro.metrics.collectors import Counter
from repro.obs import (
    LEAF_STAGES,
    Histogram,
    MetricsRegistry,
    MetricsSampler,
    NullTracer,
    SpanTracer,
    Telemetry,
    breakdown_table,
    load_spans,
    percentile_packet,
    render_report,
    run_manifest,
    slowest_packets,
    stage_breakdown,
    timeline_table,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.sim import Simulator


# ----------------------------------------------------------------------
# Span tracer
# ----------------------------------------------------------------------
class TestSpanTracer:
    def test_per_packet_uses_index(self):
        t = SpanTracer()
        for pid in range(100):
            t.record(float(pid), "nf_service", pid, 1.0)
            t.record(float(pid) + 0.5, "sink", pid, 0.0)
        recs = t.per_packet(7)
        assert [r.stage for r in recs] == ["nf_service", "sink"]
        # The index answers without scanning: by_packet map holds them.
        assert t.per_packet(999) == []

    def test_index_matches_scan(self):
        t = SpanTracer()
        t.record(1.0, "nic_ring", 5, 0.1)
        t.record(2.0, "nf_service", 5, 0.5, 2)
        t.record(2.5, "nf_service", 6, 0.4, 0)
        scan = [r for r in t.records if r.packet_id == 5]
        assert t.per_packet(5) == scan
        assert sorted(t.packet_ids()) == [5, 6]

    def test_packet_total_sums_leaf_stages_only(self):
        t = SpanTracer()
        t.record(1.0, "nic_ring", 1, 0.1)
        t.record(3.0, "vswitch_queue", 1, 2.0)
        t.record(5.0, "path_transit", 1, 4.0, 0)  # enclosing: excluded
        t.record(5.0, "sink", 1, 0.0)
        assert t.packet_total(1) == pytest.approx(2.1)

    def test_clear_resets_index(self):
        t = SpanTracer()
        t.record(1.0, "sink", 1, 0.0)
        t.clear()
        assert len(t) == 0
        assert t.per_packet(1) == []
        assert list(t.packet_ids()) == []

    def test_start_property(self):
        t = SpanTracer()
        t.record(10.0, "nf_service", 1, 4.0)
        assert t.records[0].start == pytest.approx(6.0)

    def test_null_tracer_is_inert(self):
        NullTracer.record(1.0, "sink", 1, 0.0)
        assert not NullTracer.enabled
        assert len(NullTracer) == 0
        assert NullTracer.per_packet(1) == []
        assert NullTracer.by_stage() == {}

    def test_tracer_names_live_in_obs(self):
        # The deprecated repro.sim.trace alias was removed in 2.0; the
        # canonical names live in repro.obs (re-exported via repro.sim).
        from repro.obs.span import Tracer
        from repro.sim import NullTracer as N2

        t = Tracer()
        t.record(1.0, "vswitch_queue", 3, 2.0)
        assert isinstance(t, SpanTracer)
        assert t.stage_totals() == {"vswitch_queue": 2.0}
        assert N2 is NullTracer


# ----------------------------------------------------------------------
# Counter labels (satellite)
# ----------------------------------------------------------------------
class TestCounterLabels:
    def test_inc_with_labels(self):
        c = Counter()
        c.inc("drops", path=3, reason="overflow")
        c.inc("drops", 2, reason="overflow", path=3)  # kwarg order free
        assert c.get("drops", path=3, reason="overflow") == 3
        assert c.get("drops{path=3,reason=overflow}") == 3

    def test_as_dict_sorted(self):
        c = Counter()
        c.inc("zeta")
        c.inc("alpha", 5)
        c.inc("drops", path=1)
        assert list(c.as_dict()) == sorted(c.as_dict())
        assert c.as_dict()["alpha"] == 5


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("ingress")
        reg.counter("ingress", 4, path=2)
        assert reg.counters.get("ingress") == 1
        assert reg.counters.get("ingress", path=2) == 4

    def test_gauge_snapshot_series(self):
        reg = MetricsRegistry()
        depth = {"v": 3}
        reg.gauge("q.depth", lambda: depth["v"])
        reg.snapshot(10.0)
        depth["v"] = 7
        reg.snapshot(20.0)
        assert reg.series["q.depth"] == [(10.0, 3.0), (20.0, 7.0)]

    def test_duplicate_gauge_raises(self):
        reg = MetricsRegistry()
        reg.gauge("x", lambda: 0)
        with pytest.raises(ValueError):
            reg.gauge("x", lambda: 1)

    def test_histogram_quantiles(self):
        h = Histogram(quantiles=(0.5,))
        for v in range(1, 101):
            h.observe(float(v))
        d = h.as_dict()
        assert d["count"] == 100
        assert d["max"] == 100.0
        assert d["q0.5"] == pytest.approx(50.0, rel=0.2)
        assert h.mean == pytest.approx(50.5)

    def test_sampler_ticks_until_horizon(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.gauge("now", lambda: sim.now)
        sampler = MetricsSampler(sim, reg, interval=10.0, horizon=35.0)
        sampler.start()
        sim.run(until=100.0)
        times = [t for t, _ in reg.series["now"]]
        assert times == [10.0, 20.0, 30.0]

    def test_to_dict_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.gauge("a", lambda: 1)
        reg.snapshot(1.0)
        d = reg.to_dict()
        assert set(d) >= {"counters", "series"}


# ----------------------------------------------------------------------
# Parity: bit-identical with telemetry on/off (satellite)
# ----------------------------------------------------------------------
def _result_json(res):
    return json.dumps(res.to_dict(), sort_keys=True)


class TestTelemetryParity:
    CFG = dict(policy="adaptive", n_paths=4, load=0.75, duration=12_000.0,
               warmup=2_000.0, drain=4_000.0, seed=31)

    def test_plain_scenario_bit_identical(self):
        off = run_scenario(ScenarioConfig(**self.CFG))
        on = run_scenario(ScenarioConfig(**self.CFG), telemetry=Telemetry())
        assert _result_json(off) == _result_json(on)
        assert on.telemetry is not None and off.telemetry is None

    def test_fault_scenario_bit_identical(self):
        sched = FaultSchedule().crash(1, at=4_000.0, duration=3_000.0)
        off = run_scenario(ScenarioConfig(faults=sched, **self.CFG))
        sched2 = FaultSchedule().crash(1, at=4_000.0, duration=3_000.0)
        tel = Telemetry()
        on = run_scenario(ScenarioConfig(faults=sched2, **self.CFG),
                      telemetry=tel)
        assert _result_json(off) == _result_json(on)
        names = {e.name for e in tel.events}
        assert "fault:arm:crash" in names
        assert "fault:clear:crash" in names
        assert "path:eject" in names

    def test_metrics_off_spans_off_still_identical(self):
        off = run_scenario(ScenarioConfig(**self.CFG))
        on = run_scenario(ScenarioConfig(**self.CFG),
                      telemetry=Telemetry(spans=False, metrics_interval=0))
        assert _result_json(off) == _result_json(on)


# ----------------------------------------------------------------------
# Stage partition: leaf spans sum to end-to-end latency
# ----------------------------------------------------------------------
class TestStagePartition:
    @pytest.fixture(scope="class")
    def traced(self):
        tel = Telemetry()
        res = run_scenario(
            ScenarioConfig(policy="spray", n_paths=4, load=0.7,
                           duration=15_000.0, warmup=0.0, drain=5_000.0,
                           seed=9),
            telemetry=tel,
        )
        return tel, res

    def test_leaf_sum_equals_e2e_per_packet(self, traced):
        tel, _ = traced
        tr = tel.tracer
        checked = 0
        for pid in tr.packet_ids():
            recs = tr.per_packet(pid)
            stages = [r.stage for r in recs]
            if "sink" not in stages or "nic_ring" not in stages:
                continue  # dropped or still in flight at horizon
            t_done = max(r.time for r in recs if r.stage == "sink")
            t_nic = next(r for r in recs if r.stage == "nic_ring").start
            leaf = sum(r.dt for r in recs if r.stage in LEAF_STAGES)
            assert leaf == pytest.approx(t_done - t_nic, abs=1e-6), pid
            checked += 1
        assert checked > 1000

    def test_aggregate_within_one_percent_of_sink_mean(self, traced):
        tel, res = traced
        totals = [tel.tracer.packet_total(pid)
                  for pid in tel.tracer.packet_ids()]
        span_mean = sum(totals) / len(totals)
        assert span_mean == pytest.approx(res.summary.mean, rel=0.01)

    def test_breakdown_tables_render(self, traced):
        tel, res = traced
        text = breakdown_table(tel.tracer).render()
        for stage in LEAF_STAGES:
            assert stage in text
        report = render_report(tel.tracer, top_k=2, e2e_summary=res.summary)
        assert "slow packet" in report and "dominant" in report

    def test_slowest_and_percentile_packets(self, traced):
        tel, _ = traced
        top = slowest_packets(tel.tracer, k=5)
        assert len(top) == 5
        assert top[0][1] >= top[-1][1]
        pid = percentile_packet(tel.tracer, 99.9)
        assert pid is not None
        # The p99.9 packet is slower than ~99% of packets.
        totals = sorted(v for _, v in
                        __import__("repro.obs.report", fromlist=["packet_totals"]
                                   ).packet_totals(tel.tracer))
        assert tel.tracer.packet_total(pid) >= totals[int(0.99 * len(totals))]
        text = timeline_table(tel.tracer, pid).render()
        assert str(pid) in text

    def test_registry_gauges_registered(self, traced):
        tel, _ = traced
        assert any(k.startswith("path0.") for k in tel.registry.series)
        assert "sink.delivered" in tel.registry.series
        last = tel.registry.series["sink.delivered"][-1][1]
        assert last > 0


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    @pytest.fixture(scope="class")
    def traced(self):
        tel = Telemetry()
        sched = FaultSchedule().degrade(0, at=3_000.0, duration=3_000.0,
                                        factor=4.0)
        res = run_scenario(
            ScenarioConfig(policy="adaptive", n_paths=2, load=0.6,
                           duration=8_000.0, warmup=0.0, drain=3_000.0,
                           seed=5, faults=sched),
            telemetry=tel,
        )
        return tel, res

    def test_chrome_trace_schema(self, traced):
        tel, _ = traced
        doc = to_chrome_trace(tel)
        n = validate_chrome_trace(doc)
        assert n == len(doc["traceEvents"]) and n > 100
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert {"M", "X", "i", "C"} <= phases
        names = {ev["args"].get("name") for ev in doc["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        assert {"nic", "sink", "path0", "path1"} <= names

    def test_chrome_trace_sorted_and_complete(self, traced):
        tel, _ = traced
        events = to_chrome_trace(tel)["traceEvents"]
        body = [e for e in events if e["ph"] != "M"]
        ts = [e["ts"] for e in body]
        assert ts == sorted(ts)
        assert all("pid" in e and "tid" in e and "ts" in e for e in events)

    def test_validate_rejects_bad_docs(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "pid": 0,
                                                    "tid": 0, "ts": 1.0}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "i", "pid": 0, "tid": 0, "ts": 5.0},
                {"ph": "i", "pid": 0, "tid": 0, "ts": 1.0},
            ]})

    def test_bundle_roundtrip(self, traced, tmp_path):
        tel, _ = traced
        paths = tel.export(tmp_path / "bundle")
        assert set(paths) == {"trace", "events", "metrics", "manifest"}
        doc = json.loads(open(paths["trace"]).read())
        validate_chrome_trace(doc)
        reloaded = load_spans(paths["events"])
        assert len(reloaded) == len(tel.tracer)
        assert reloaded.stage_totals() == pytest.approx(
            tel.tracer.stage_totals())
        man = json.loads(open(paths["manifest"]).read())
        assert man["schema"].startswith("repro.obs.manifest/")
        assert man["seed"] == 5
        assert len(man["code_fingerprint"]) == 64
        assert man["config"]["policy"] == "adaptive"

    def test_fault_instants_in_trace(self, traced):
        tel, _ = traced
        names = [ev["name"] for ev in to_chrome_trace(tel)["traceEvents"]
                 if ev["ph"] == "i"]
        assert "fault:arm:degrade" in names
        assert "fault:clear:degrade" in names

    def test_manifest_standalone(self):
        man = run_manifest(config={"policy": "single"}, seed=3)
        assert man["config_sha256"]
        assert man["versions"]["python"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestObsCli:
    def test_trace_inline_and_report(self, capsys, tmp_path):
        from repro.cli import main

        out_dir = tmp_path / "bundle"
        rc = main(["trace", "--policy", "spray", "--paths", "2",
                   "--load", "0.5", "--duration", "10",
                   "--out", str(out_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage breakdown" in out
        assert "vswitch_queue" in out
        assert "slow packet" in out
        assert (out_dir / "trace.json").exists()

        assert main(["report", str(out_dir), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "stage breakdown" in out and "config_sha" in out

    def test_trace_config_file(self, capsys, tmp_path):
        from repro.cli import main

        cfg = ScenarioConfig(policy="single", n_paths=1, load=0.5,
                             duration=8_000.0, warmup=0.0, drain=2_000.0)
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(cfg.to_dict()))
        assert main(["trace", str(path), "--top", "1"]) == 0
        assert "nf_service" in capsys.readouterr().out

    def test_report_missing_artifact(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_bad_config_exits_2(self, capsys, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"policy": "frobnicate"}))
        assert main(["trace", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Sweep integration
# ----------------------------------------------------------------------
class TestSweepTelemetry:
    def test_bundles_persisted_per_cell(self, tmp_path):
        from repro.sweep import Axis, SweepSpec, run_sweep

        spec = SweepSpec(
            name="obs-test",
            base={"load": 0.5, "duration": 4_000.0, "warmup": 0.0,
                  "drain": 1_000.0, "n_paths": 2},
            axes=[Axis("policy", ["single", "spray"])],
        )
        plain = run_sweep(spec, jobs=1, cache_dir=str(tmp_path / "c1"))
        traced = run_sweep(spec, jobs=1, cache_dir=str(tmp_path / "c2"),
                           telemetry=True)
        # Payloads identical with telemetry on.
        assert [c.identity_dict() for c in plain.cells] == \
               [c.identity_dict() for c in traced.cells]
        tel_root = tmp_path / "c2" / "telemetry"
        bundles = sorted(tel_root.iterdir())
        assert len(bundles) == 2
        for b in bundles:
            assert (b / "trace.json").exists()
            assert (b / "events.jsonl").exists()
            assert (b / "manifest.json").exists()
            validate_chrome_trace(json.loads((b / "trace.json").read_text()))

    def test_cached_cell_without_bundle_is_resimulated(self, tmp_path):
        from repro.sweep import Axis, SweepSpec, run_sweep

        spec = SweepSpec(
            name="obs-test2",
            base={"load": 0.5, "duration": 3_000.0, "warmup": 0.0,
                  "drain": 1_000.0, "n_paths": 1},
            axes=[Axis("policy", ["single"])],
        )
        first = run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        assert first.cache_misses == 1
        # Cache is warm but no bundle exists: telemetry forces a re-run.
        second = run_sweep(spec, jobs=1, cache_dir=str(tmp_path),
                           telemetry=True)
        assert second.cache_misses == 1
        third = run_sweep(spec, jobs=1, cache_dir=str(tmp_path),
                          telemetry=True)
        assert third.cache_hits == 1
