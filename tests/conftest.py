"""Shared fixtures."""

import numpy as np
import pytest

from repro.net.packet import FiveTuple, PacketFactory
from repro.sim import RngRegistry, Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rngs():
    return RngRegistry(seed=12345)


@pytest.fixture
def rng():
    return np.random.default_rng(999)


@pytest.fixture
def factory():
    return PacketFactory()


@pytest.fixture
def ftuple():
    return FiveTuple(1, 2, 1234, 80)


def make_packet(factory, ftuple, size=1554, t=0.0, flow_id=0, seq=0, priority=0):
    return factory.make(ftuple, size, t, flow_id=flow_id, seq=seq, priority=priority)


@pytest.fixture
def mk_packet(factory, ftuple):
    """Factory fixture: mk_packet(seq=3, size=100, ...)."""

    def _mk(**kw):
        return make_packet(factory, ftuple, **kw)

    return _mk
