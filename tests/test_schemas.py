"""Tests for repro.schemas: payload versioning and validation."""

import pytest

from repro import schemas


class TestVersionFor:
    def test_all_kinds_versioned(self):
        for kind in ("simulation_result", "sweep_result", "slo_report",
                     "check_report", "fuzz_report", "diff_report",
                     "forensics_report", "ledger_entry", "ledger_diff",
                     "trace_report"):
            version = schemas.version_for(kind)
            major, minor = version.split(".")
            assert major.isdigit() and minor.isdigit()

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            schemas.version_for("bogus_report")


class TestInferKind:
    def test_marker_inference(self):
        assert schemas.infer_kind({"spec": {}, "cells": []}) == "sweep_result"
        assert schemas.infer_kind(
            {"invariants": {}, "violations": []}) == "check_report"
        assert schemas.infer_kind(
            {"cases": 5, "failures": []}) == "fuzz_report"
        assert schemas.infer_kind(
            {"variants": {}, "all_identical": True}) == "diff_report"
        assert schemas.infer_kind(
            {"n_windows": 1, "windows": [], "attainment": 1.0}
        ) == "slo_report"
        assert schemas.infer_kind(
            {"config": {}, "summary": {}, "offered": 1}
        ) == "simulation_result"

    def test_observability_kinds_inferred(self):
        assert schemas.infer_kind(
            {"cause_histogram": {}, "threshold_us": 1.0, "analyzed": 3}
        ) == "forensics_report"
        assert schemas.infer_kind(
            {"base": {}, "candidate": {}, "metrics": {}, "regressions": []}
        ) == "ledger_diff"
        assert schemas.infer_kind(
            {"label": "gate", "recorded_utc": "t", "summary": {},
             "config_sha256": "x"}
        ) == "ledger_entry"
        assert schemas.infer_kind(
            {"stage_breakdown": {}, "slowest": []}
        ) == "trace_report"

    def test_unknown_shapes(self):
        assert schemas.infer_kind({}) is None
        assert schemas.infer_kind({"foo": 1}) is None
        assert schemas.infer_kind([1, 2]) is None


class TestCheckVersion:
    def test_missing_version_accepted(self):
        schemas.check_version({"spec": {}, "cells": []}, "sweep_result")

    def test_same_major_any_minor_accepted(self):
        schemas.check_version({"schema_version": "1.0"}, "sweep_result")
        schemas.check_version({"schema_version": "1.99"}, "sweep_result")

    def test_major_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            schemas.check_version({"schema_version": "2.0"}, "sweep_result")

    def test_where_context_in_message(self):
        with pytest.raises(ValueError, match="results.json"):
            schemas.check_version({"schema_version": "9.1"}, "slo_report",
                                  where="results.json")


class TestValidate:
    def test_infers_and_returns_kind(self):
        obj = {"schema_version": "1.0", "cases": 3, "failures": []}
        assert schemas.validate(obj) == "fuzz_report"

    def test_explicit_kind_checked_against_shape(self):
        obj = {"cases": 3, "failures": []}
        assert schemas.validate(obj, "fuzz_report") == "fuzz_report"
        with pytest.raises(ValueError, match="looks like"):
            schemas.validate(obj, "sweep_result")

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="dict"):
            schemas.validate([1, 2, 3])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="known kinds"):
            schemas.validate({"foo": 1})
        with pytest.raises(ValueError, match="known kinds"):
            schemas.validate({"cases": 1, "failures": []}, "bogus")

    def test_bad_major_rejected(self):
        obj = {"schema_version": "3.0", "cases": 3, "failures": []}
        with pytest.raises(ValueError, match="major"):
            schemas.validate(obj)


class TestLoadersEnforceVersion:
    def test_simulation_result_round_trip(self):
        import repro
        from repro.bench.scenarios import SimulationResult

        res = repro.run(policy="single", n_paths=1, duration=3000.0,
                        warmup=300.0, drain=2000.0, n_flows=16)
        payload = res.to_dict()
        assert payload["schema_version"] == schemas.version_for(
            "simulation_result")
        again = SimulationResult.from_dict(payload)
        assert again.to_dict() == payload
        payload["schema_version"] = "2.0"
        with pytest.raises(ValueError, match="schema_version"):
            SimulationResult.from_dict(payload)

    def test_sweep_result_rejects_future_major(self):
        from repro.sweep.result import SweepResult

        with pytest.raises(ValueError, match="schema_version"):
            SweepResult.from_dict(
                {"schema_version": "2.0", "spec": {}, "cells": []})

    def test_slo_report_is_versioned(self):
        import repro
        from repro.slo import SloSpec

        res = repro.run(
            repro.ScenarioConfig(duration=3000.0, warmup=300.0,
                                 drain=2000.0, n_flows=16,
                                 slo=SloSpec(objectives=("p99 <= 5000us",),
                                             window=1000.0)))
        assert res.slo_report["schema_version"] == schemas.version_for(
            "slo_report")
        assert schemas.validate(res.slo_report) == "slo_report"
