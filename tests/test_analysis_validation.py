"""Validation: the simulator against closed-form queueing theory.

If the data-plane model disagrees with M/D/1 / M/G/1 in the regimes
where those are exact, its tail measurements mean nothing.  These tests
wire minimal configurations (one path, no jitter, no batching overhead)
and require a few-percent match to the Pollaczek-Khinchine formulas.
"""

import math

import numpy as np
import pytest

from repro.analysis import (
    effective_service_rate,
    md1_mean_wait,
    mg1_mean_wait,
    mm1_mean_sojourn,
    mm1_mean_wait,
    mm1_sojourn_quantile,
    stall_availability,
    stall_tail_bound,
    utilization,
)
from repro.dataplane.path import DataPath, PathConfig
from repro.dataplane.vcpu import JitterParams, SHARED_CORE
from repro.elements import Chain, Delay
from repro.net import PacketFactory, PoissonSource
from repro.sim import Simulator


class TestFormulas:
    def test_utilization(self):
        assert utilization(500_000, 1.0) == pytest.approx(0.5)

    def test_mm1_wait_grows_with_rho(self):
        assert mm1_mean_wait(0.9, 1.0) > mm1_mean_wait(0.5, 1.0)

    def test_mm1_sojourn_is_wait_plus_service(self):
        rho, s = 0.6, 2.0
        assert mm1_mean_sojourn(rho, s) == pytest.approx(mm1_mean_wait(rho, s) + s)

    def test_md1_is_half_mm1(self):
        assert md1_mean_wait(0.7, 1.5) == pytest.approx(mm1_mean_wait(0.7, 1.5) / 2)

    def test_mg1_reduces_to_md1(self):
        s = 2.0
        lam_pps = 300_000.0  # rho = 0.6
        assert mg1_mean_wait(lam_pps, s, s**2) == pytest.approx(md1_mean_wait(0.6, s))

    def test_mm1_quantile_monotone(self):
        assert mm1_sojourn_quantile(0.5, 1.0, 0.99) > mm1_sojourn_quantile(0.5, 1.0, 0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mm1_mean_wait(1.0, 1.0)
        with pytest.raises(ValueError):
            mm1_sojourn_quantile(0.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            mg1_mean_wait(100.0, 2.0, 1.0)  # E[S^2] < E[S]^2

    def test_availability(self):
        assert stall_availability(JitterParams()) == 1.0
        a = stall_availability(SHARED_CORE)
        assert 0.9 < a < 1.0

    def test_effective_rate_scales(self):
        base = 1e6
        assert effective_service_rate(JitterParams(), base) == base
        assert effective_service_rate(SHARED_CORE, base) < base

    def test_tail_bound_regimes(self):
        assert stall_tail_bound(JitterParams(), 0.99) == 0.0
        # Shared core stalls ~3% of the time: the p99 is inside the
        # stall regime and the bound exceeds half the mean stall.
        b = stall_tail_bound(SHARED_CORE, 0.99)
        assert b > SHARED_CORE.mean_stall() / 2
        # p50 is far outside the stall-hit probability -> no floor.
        assert stall_tail_bound(SHARED_CORE, 0.5) == 0.0


def run_single_queue(rate_pps, service_us, duration=400_000.0, exp_service=False,
                     seed=3):
    """Minimal single-server queue: Poisson arrivals, fixed/exp service,
    no jitter, no batch overhead, no flow cache cost."""
    sim = Simulator()
    factory = PacketFactory()
    rng = np.random.default_rng(seed)

    if exp_service:
        class ExpDelay(Delay):
            def process(self, packet, now):
                self.processed += 1
                return float(rng.exponential(service_us))

        chain = Chain([ExpDelay("exp", base_cost=service_us)])
    else:
        chain = Chain([Delay("det", base_cost=service_us)])

    waits = []

    def on_done(pkt):
        waits.append(pkt.t_deq - pkt.t_enq)

    dp = DataPath(
        sim, 0, chain, on_done, rng=rng,
        config=PathConfig(batch_size=1, batch_overhead=0.0,
                          queue_capacity=1_000_000),
    )
    # Remove the flow-cache cost so service is exactly the Delay element.
    dp.flowcache.hit_cost = 0.0
    dp.flowcache.miss_cost = 0.0
    dp.flowcache.upcall_cost = 0.0
    src = PoissonSource(sim, factory, dp.enqueue, rng, rate_pps=rate_pps,
                        duration=duration, n_flows=16)
    src.start()
    sim.run(until=duration + 50_000.0)
    # Discard warmup (first 20%).
    return np.array(waits[int(0.2 * len(waits)):])


class TestSimulatorVsTheory:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_md1_mean_wait_matches(self, rho):
        service = 1.0
        rate = rho * 1e6
        waits = run_single_queue(rate, service)
        predicted = md1_mean_wait(rho, service)
        assert waits.mean() == pytest.approx(predicted, rel=0.12, abs=0.03)

    def test_mm1_mean_wait_matches(self):
        rho, service = 0.6, 1.0
        waits = run_single_queue(rho * 1e6, service, exp_service=True)
        predicted = mm1_mean_wait(rho, service)
        assert waits.mean() == pytest.approx(predicted, rel=0.15)

    def test_deterministic_service_waits_less_than_exponential(self):
        rho, service = 0.7, 1.0
        det = run_single_queue(rho * 1e6, service).mean()
        exp = run_single_queue(rho * 1e6, service, exp_service=True).mean()
        assert det < exp

    def test_jitter_availability_matches_throughput(self, rng):
        """A saturated jittery server delivers availability * mu."""
        from repro.dataplane.vcpu import VCpu

        params = JitterParams(mean_run=500.0, stall_median=50.0, stall_sigma=0.3)
        cpu = VCpu(rng=rng, params=params)
        service = 1.0
        t, n = 0.0, 30_000
        for _ in range(n):
            _, t = cpu.execute(t, service)
        measured_rate = n / t  # packets per µs, saturated
        predicted = stall_availability(params) * (1.0 / service)
        assert measured_rate == pytest.approx(predicted, rel=0.05)
