"""Unit tests for the fault-injection & resilience subsystem.

Covers the declarative schedule (validation, materialization,
serialization), each fault kind's observable effect on a running host,
and the controller's ejection / re-steer / reinstatement cycle --
including the graceful all-paths-ejected regime.
"""

import math

import numpy as np
import pytest

from repro import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    MpdpConfig,
    MultipathDataPlane,
    PathConfig,
    PoissonSource,
    RngRegistry,
    SHARED_CORE,
    Simulator,
    StochasticFaultSpec,
)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meltdown", 0, 10.0)

    def test_drop_burst_must_target_nic(self):
        with pytest.raises(ValueError, match="nic"):
            FaultSpec("drop_burst", 0, 10.0)

    def test_path_kinds_need_int_target(self):
        with pytest.raises(ValueError, match="path id"):
            FaultSpec("crash", "nic", 10.0)

    def test_degrade_magnitude_must_exceed_one(self):
        with pytest.raises(ValueError, match="magnitude"):
            FaultSpec("degrade", 0, 10.0, 100.0, magnitude=0.5)

    def test_drop_prob_range(self):
        with pytest.raises(ValueError, match="drop prob"):
            FaultSpec("drop_burst", "nic", 10.0, 100.0, magnitude=1.5)

    def test_sched_freeze_needs_finite_duration(self):
        with pytest.raises(ValueError, match="finite"):
            FaultSpec("sched_freeze", 0, 10.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="at"):
            FaultSpec("crash", 0, -1.0)

    def test_stochastic_validation(self):
        with pytest.raises(ValueError, match="positive"):
            StochasticFaultSpec("crash", 0, mtbf=-1.0)
        with pytest.raises(ValueError, match="unknown fault kind"):
            StochasticFaultSpec("nope", 0)


# ----------------------------------------------------------------------
# Schedule materialization
# ----------------------------------------------------------------------
class TestSchedule:
    def test_empty(self):
        assert FaultSchedule().empty
        assert not FaultSchedule().crash(0, at=1.0).empty
        assert not FaultSchedule().renewal("hang").empty

    def test_deterministic_ordering(self):
        sched = (FaultSchedule()
                 .hang(1, at=20.0, duration=5.0)
                 .hang(0, at=10.0, duration=10.0))
        ev = sched.materialize(horizon=100.0)
        assert [(e.time, e.action, e.target) for e in ev] == [
            (10.0, "arm", 0),
            (20.0, "clear", 0),   # clear sorts before same-time arm
            (20.0, "arm", 1),
            (25.0, "clear", 1),
        ]

    def test_horizon_clipping(self):
        sched = (FaultSchedule()
                 .crash(0, at=50.0, duration=100.0)   # clear beyond horizon
                 .hang(1, at=200.0, duration=1.0))    # entirely beyond
        ev = sched.materialize(horizon=80.0)
        assert [(e.action, e.target) for e in ev] == [("arm", 0)]

    def test_permanent_crash_never_clears(self):
        ev = FaultSchedule().crash(0, at=5.0).materialize(horizon=1e9)
        assert [e.action for e in ev] == ["arm"]

    def test_stochastic_reproducible(self):
        sched = FaultSchedule().renewal("crash", path=0, mtbf=500.0, mttr=50.0)
        ev1 = sched.materialize(10_000.0, np.random.default_rng(7))
        ev2 = sched.materialize(10_000.0, np.random.default_rng(7))
        ev3 = sched.materialize(10_000.0, np.random.default_rng(8))
        assert ev1 == ev2
        assert ev1 != ev3
        assert len(ev1) > 2

    def test_stochastic_alternates_arm_clear(self):
        sched = FaultSchedule().renewal("hang", path=2, mtbf=300.0, mttr=30.0)
        ev = sched.materialize(20_000.0, np.random.default_rng(3))
        actions = [e.action for e in ev]
        # Strict alternation starting with an arm; a trailing arm is
        # allowed (window straddles the horizon).
        assert actions[0] == "arm"
        for a, b in zip(actions, actions[1:]):
            assert a != b

    def test_stochastic_requires_rng(self):
        sched = FaultSchedule().renewal("crash")
        with pytest.raises(ValueError, match="rng"):
            sched.materialize(1_000.0)

    def test_roundtrip_dict(self):
        sched = (FaultSchedule()
                 .crash(0, at=30.0)                       # inf duration
                 .degrade(1, at=10.0, duration=20.0, factor=4.0)
                 .drop_burst(at=5.0, duration=2.0, prob=0.25)
                 .renewal("hang", path=3, mtbf=1_000.0, mttr=100.0))
        d = sched.to_dict()
        assert d["faults"][0]["duration"] is None  # inf -> JSON null
        back = FaultSchedule.from_dict(d)
        assert back.specs == sched.specs
        assert back.stochastic == sched.stochastic

    def test_add_rejects_non_spec(self):
        with pytest.raises(TypeError):
            FaultSchedule().add("crash")


# ----------------------------------------------------------------------
# Running hosts under faults
# ----------------------------------------------------------------------
def run_faulted(schedule, *, policy="rr", n_paths=2, rate=150_000,
                dur=30_000.0, seed=11, ejection=True, **cfg_kw):
    """Short Poisson run with a fault schedule installed; returns
    (host, injector)."""
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    cfg = MpdpConfig(n_paths=n_paths, policy=policy,
                     path=PathConfig(jitter=SHARED_CORE),
                     warmup=2_000.0, **cfg_kw)
    host = MultipathDataPlane(sim, cfg, rngs)
    injector = FaultInjector(sim, host, schedule, rng=rngs.stream("faults"))
    injector.install(horizon=dur + 10_000.0, enable_ejection=ejection)
    src = PoissonSource(sim, host.factory, host.input, rngs.stream("traffic"),
                        rate_pps=rate, n_flows=64, duration=dur)
    src.start()
    sim.run(until=dur + 10_000.0)
    host.finalize()
    return host, injector


class TestFaultKinds:
    def test_crash_drops_backlog_keeps_accepting(self):
        # Deterministic backlog: enqueue directly, then crash the path
        # before the simulator serves anything.
        from repro.net.packet import FiveTuple

        sim = Simulator()
        host = MultipathDataPlane(
            sim, MpdpConfig(n_paths=2, policy="rr"), RngRegistry(seed=1))
        p0 = host.paths[0]
        for i in range(5):
            p0.enqueue(host.factory.make(FiveTuple(0, 1, 1000 + i, 80),
                                         1500, 0.0, flow_id=i, seq=i))
        assert len(p0.queue) == 5
        p0.inject_crash()
        # The backlog at onset was lost with an attributable reason.
        assert p0.fault_dropped == 5
        assert len(p0.queue) == 0
        assert host.stats()["drops"].get("path:crash", 0) == 5
        assert p0.poller.frozen
        # The shared ring still accepts arrivals (producers don't know
        # the consumer died) -- they sit unserved, never raising.
        assert p0.enqueue(host.factory.make(FiveTuple(0, 1, 2000, 80),
                                            1500, 1.0))
        assert len(p0.queue) == 1

    def test_crash_midrun_strands_traffic_without_ejection(self):
        clean, _ = run_faulted(FaultSchedule(), ejection=False)
        sched = FaultSchedule().crash(0, at=10_000.0, duration=8_000.0)
        host, _ = run_faulted(sched, ejection=False)
        # Without ejection, arrivals steered to the dead path strand for
        # up to the full 8 ms window (round-robin pins half the traffic
        # there), so the tail explodes relative to the clean run.
        p999 = host.sink.recorder.exact_percentile(99.9)
        assert p999 > 2_000.0
        assert p999 > 10.0 * clean.sink.recorder.exact_percentile(99.9)

    def test_crash_then_clear_resumes_service(self):
        sched = FaultSchedule().crash(0, at=10_000.0, duration=5_000.0)
        host, _ = run_faulted(sched, ejection=True)
        p0 = host.paths[0]
        assert not p0.poller.frozen
        assert p0.faulted is None
        # Path 0 completed work after the 15 ms clear point.
        assert p0.last_completion > 15_000.0

    def test_hang_preserves_backlog(self):
        sched = FaultSchedule().hang(0, at=10_000.0, duration=6_000.0)
        host, _ = run_faulted(sched, ejection=False)
        stats = host.stats()
        # Frozen, not dead: nothing dropped at the path, everything is
        # served once the poller thaws (drain window is generous).
        assert stats["drops"].get("path:crash", 0) == 0
        assert host.paths[0].fault_dropped == 0
        assert stats["delivered"] == host.ingress_count

    def test_degrade_inflates_latency(self):
        # Single path at moderate load: an 8x service-cost multiplier
        # pushes it deep into overload, so the tail must explode.
        kw = dict(policy="single", n_paths=1, rate=300_000, seed=13)
        clean, _ = run_faulted(FaultSchedule(), **kw)
        sched = FaultSchedule().degrade(0, at=5_000.0, duration=20_000.0,
                                        factor=8.0)
        slow, _ = run_faulted(sched, ejection=False, **kw)
        assert slow.paths[0].poller.degrade == 1.0  # cleared by run end
        assert (slow.sink.recorder.exact_percentile(99)
                > 5.0 * clean.sink.recorder.exact_percentile(99))

    def test_drop_burst_loses_packets_at_nic(self):
        sched = FaultSchedule().drop_burst(at=10_000.0, duration=2_000.0,
                                           prob=1.0)
        host, _ = run_faulted(sched)
        # NIC-level loss happens before MPDP ingress, so it is accounted
        # at the NIC: fault_dropped (burst loss) within dropped (total).
        assert host.nic.fault_dropped > 0
        assert host.stats()["nic_drops"] >= host.nic.fault_dropped
        # nic.received counts accepted packets only; offered = received
        # + dropped, and everything accepted reached MPDP ingress.
        assert host.ingress_count == host.nic.received

    def test_drop_burst_probabilistic(self):
        sched = FaultSchedule().drop_burst(at=5_000.0, duration=20_000.0,
                                           prob=0.3)
        host, _ = run_faulted(sched)
        offered = host.nic.received + host.nic.dropped
        frac = host.nic.fault_dropped / offered
        assert 0.05 < frac < 0.5  # ~0.3 of the burst window's share

    def test_sched_freeze_stalls_vcpu(self):
        sched = FaultSchedule().sched_freeze(0, at=10_000.0, duration=3_000.0)
        host, _ = run_faulted(sched, ejection=False)
        stats = host.stats()
        # The stall shows up in the vCPU accounting and nothing is lost.
        assert host.paths[0].vcpu.stall_count >= 1
        assert stats["delivered"] == host.ingress_count


class TestEjectionRecovery:
    def test_eject_resteer_reinstate(self):
        sched = FaultSchedule().crash(0, at=10_000.0, duration=6_000.0)
        host, inj = run_faulted(sched, ejection=True)
        ctl = host.controller
        assert ctl.ejections >= 1
        assert ctl.reinstatements >= 1
        assert not ctl.detector.ejected           # reinstated by run end
        assert sorted(ctl.live_ids) == [0, 1]
        # Queued packets were re-steered to the live path, and the
        # availability join saw the full lifecycle.
        assert ctl.rerouted >= 1
        lags = inj.tracker.detection_lags()
        assert lags and all(0.0 < lag < 10_000.0 for lag in lags)
        recs = inj.tracker.recovery_times()
        assert recs and all(0.0 <= r < 10_000.0 for r in recs)

    def test_ejection_disabled_without_injector(self):
        sim = Simulator()
        host = MultipathDataPlane(
            sim, MpdpConfig(n_paths=2, policy="rr"), RngRegistry(seed=1))
        assert host.controller.eject is False

    def test_all_paths_ejected_graceful(self):
        # Both paths crash simultaneously for 8 ms.  The host must not
        # raise, must account drops explicitly, and must recover.
        sched = (FaultSchedule()
                 .crash(0, at=10_000.0, duration=8_000.0)
                 .crash(1, at=10_000.0, duration=8_000.0))
        host, _ = run_faulted(sched, ejection=True, policy="adaptive")
        stats = host.stats()
        assert stats["drops"].get("mpdp:no-live-path", 0) > 0
        ctl = host.controller
        assert ctl.ejections >= 2 and ctl.reinstatements >= 2
        assert sorted(ctl.live_ids) == [0, 1]
        # Accounting closes: everything offered was delivered or is an
        # attributed drop.
        dropped = sum(stats["drops"].values())
        assert stats["delivered"] + dropped == host.ingress_count

    def test_permanent_crash_single_path_counts_loss(self):
        # A permanently dead only-path: all post-crash arrivals become
        # explicit no-live-path drops; selector never raises.
        sched = FaultSchedule().crash(0, at=10_000.0)
        host, _ = run_faulted(sched, policy="single", n_paths=1,
                              rate=80_000, ejection=True)
        stats = host.stats()
        assert stats["drops"].get("mpdp:no-live-path", 0) > 100
        assert host.controller.ejections == 1
        assert host.controller.reinstatements == 0

    def test_fault_free_run_has_zero_fault_counters(self):
        host, inj = run_faulted(FaultSchedule())
        assert inj.events == [] and inj.timeline == []
        assert host.nic.fault_dropped == 0
        assert all(p.fault_dropped == 0 for p in host.paths)
        assert host.controller.ejections == 0
