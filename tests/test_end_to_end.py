"""End-to-end tests: two hosts across a fabric (wire -> fabric -> MPDP)."""

import numpy as np
import pytest

from repro import (
    FabricModel,
    HostLink,
    MpdpConfig,
    MultipathDataPlane,
    PathConfig,
    PoissonSource,
    RngRegistry,
    SHARED_CORE,
    Simulator,
)
from repro.net.packet import FiveTuple


def build_rpc_world(policy, n_paths, seed=9, rpc_pps=100_000, bg_pps=500_000,
                    duration=60_000.0):
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    mk_cfg = lambda: MpdpConfig(n_paths=n_paths, policy=policy,
                                path=PathConfig(jitter=SHARED_CORE))
    host_a = MultipathDataPlane(sim, mk_cfg(), rngs)
    host_b = MultipathDataPlane(sim, mk_cfg(), rngs)
    fab_ab = FabricModel(sim, host_b.input, base_delay=10.0)
    fab_ba = FabricModel(sim, host_a.input, base_delay=10.0)
    wire_a = HostLink(sim, fab_ab.send, rate_bps=25e9)
    wire_b = HostLink(sim, fab_ba.send, rate_bps=25e9)

    rtts = []
    t_sent = {}
    n = [0]

    def server_app(pkt):
        if pkt.ftuple.dport != 9000:
            return
        resp = host_b.factory.make(pkt.ftuple.reversed(), 1000, sim.now,
                                   flow_id=pkt.flow_id + 500_000, seq=pkt.seq)
        wire_b.send(resp)

    def client_app(pkt):
        if pkt.ftuple.sport != 9000 or pkt.flow_id < 500_000:
            return
        t0 = t_sent.pop((pkt.flow_id - 500_000, pkt.seq), None)
        if t0 is not None:
            rtts.append(sim.now - t0)

    host_b.sink.on_delivery = server_app
    host_a.sink.on_delivery = client_app

    def send_request():
        i = n[0]
        n[0] += 1
        req = host_a.factory.make(FiveTuple(1, 2, 1024 + i % 128, 9000),
                                  300, sim.now, flow_id=i % 128, seq=i // 128)
        t_sent[(req.flow_id, req.seq)] = sim.now
        wire_a.send(req)

    rng = rngs.stream("arrivals")
    t = 0.0
    while t < duration:
        t += float(rng.exponential(1e6 / rpc_pps))
        sim.call_at(t, send_request)
    for host, label in ((host_a, "bg.a"), (host_b, "bg.b")):
        PoissonSource(sim, host.factory, host.input, rngs.stream(label),
                      rate_pps=bg_pps, n_flows=128, duration=duration).start()
    sim.run(until=duration + 20_000.0)
    host_a.finalize()
    host_b.finalize()
    return np.array(rtts), n[0], host_a, host_b


class TestRpcRoundTrip:
    def test_every_request_answered(self):
        rtts, sent, *_ = build_rpc_world("adaptive", 4, bg_pps=100_000)
        # No drops at this load: every request that finished the round
        # trip is accounted (a tail of in-flight ones at cutoff is ok).
        assert len(rtts) > 0.95 * sent

    def test_rtt_floor_is_two_fabric_crossings(self):
        rtts, *_ = build_rpc_world("adaptive", 4, bg_pps=50_000)
        assert rtts.min() >= 20.0  # 2 x 10 µs fabric

    def test_multipath_hosts_cut_rtt_tail(self):
        single, _, _, _ = build_rpc_world("single", 1)
        multi, _, _, _ = build_rpc_world("adaptive", 4)
        assert np.percentile(multi, 99) < 0.6 * np.percentile(single, 99)

    def test_fabric_unaffected_medians_comparable(self):
        single, *_ = build_rpc_world("single", 1)
        multi, *_ = build_rpc_world("adaptive", 4)
        assert np.percentile(multi, 50) < 1.5 * np.percentile(single, 50) + 10.0
