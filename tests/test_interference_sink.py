"""Tests for interference injection and the delivery sink."""

import pytest

from repro.dataplane import (
    DeliverySink,
    InterferenceSchedule,
    NoisyNeighbor,
    SHARED_CORE,
    VCpu,
)
from repro.dataplane.vcpu import JitterParams
from repro.net import Flow, FlowTracker


class TestNoisyNeighbor:
    def test_activate_degrades_vcpu(self, sim, rng):
        cpu = VCpu(rng=rng, params=SHARED_CORE)
        nn = NoisyNeighbor(sim, cpu, SHARED_CORE, intensity=5.0)
        nn.activate()
        assert cpu.params.stall_median == SHARED_CORE.stall_median * 5.0
        assert nn.active

    def test_deactivate_restores(self, sim, rng):
        cpu = VCpu(rng=rng, params=SHARED_CORE)
        nn = NoisyNeighbor(sim, cpu, SHARED_CORE, intensity=5.0)
        nn.activate()
        nn.deactivate()
        assert cpu.params == SHARED_CORE

    def test_idempotent(self, sim, rng):
        cpu = VCpu(rng=rng, params=SHARED_CORE)
        nn = NoisyNeighbor(sim, cpu, SHARED_CORE)
        nn.activate()
        nn.activate()
        assert nn.activations == 1
        nn.deactivate()
        nn.deactivate()
        assert not nn.active

    def test_schedule_burst(self, sim, rng):
        cpu = VCpu(rng=rng, params=SHARED_CORE)
        nn = NoisyNeighbor(sim, cpu, SHARED_CORE, intensity=3.0)
        nn.schedule_burst(100.0, 50.0)
        states = []
        sim.call_at(120.0, lambda: states.append(nn.active))
        sim.call_at(200.0, lambda: states.append(nn.active))
        sim.run()
        assert states == [True, False]

    def test_invalid_params(self, sim, rng):
        cpu = VCpu(rng=rng, params=SHARED_CORE)
        with pytest.raises(ValueError):
            NoisyNeighbor(sim, cpu, SHARED_CORE, intensity=-1.0)
        nn = NoisyNeighbor(sim, cpu, SHARED_CORE)
        with pytest.raises(ValueError):
            nn.schedule_burst(0.0, 0.0)


class TestInterferenceSchedule:
    def test_phases_apply_in_order(self, sim, rng):
        cpu = VCpu(rng=rng, params=SHARED_CORE)
        sched = InterferenceSchedule(sim, [cpu], SHARED_CORE)
        sched.add_phase(10.0, 2.0).add_phase(20.0, 0.0)
        sched.install()
        observed = []
        sim.call_at(15.0, lambda: observed.append(cpu.params.stall_median))
        sim.call_at(25.0, lambda: observed.append(cpu.params.enabled))
        sim.run()
        assert observed[0] == SHARED_CORE.stall_median * 2.0
        assert observed[1] is False  # intensity 0 disables jitter

    def test_phase_times_must_increase(self, sim, rng):
        cpu = VCpu(rng=rng, params=SHARED_CORE)
        sched = InterferenceSchedule(sim, [cpu], SHARED_CORE)
        sched.add_phase(10.0, 1.0)
        with pytest.raises(ValueError):
            sched.add_phase(10.0, 2.0)

    def test_double_install_rejected(self, sim, rng):
        sched = InterferenceSchedule(sim, [], SHARED_CORE)
        sched.install()
        with pytest.raises(RuntimeError):
            sched.install()


class TestDeliverySink:
    def test_records_latency_and_throughput(self, sim, mk_packet):
        sink = DeliverySink(sim)
        p = mk_packet(t=0.0, size=1000)
        sim.call_at(42.0, sink.deliver, p)
        sim.run()
        assert p.t_done == 42.0
        assert sink.delivered == 1
        assert sink.recorder.count == 1
        assert sink.recorder.mean == pytest.approx(42.0)
        assert sink.throughput.bytes == 1000

    def test_notifies_flow_tracker(self, sim, factory, ftuple):
        tracker = FlowTracker()
        flow = Flow(5, ftuple, 100, 0.0)
        tracker.register(flow)
        sink = DeliverySink(sim, tracker=tracker)
        p = factory.make(ftuple, 154, 0.0, flow_id=5, seq=0)
        sim.call_at(10.0, sink.deliver, p)
        sim.run()
        assert flow.completed and flow.fct == 10.0

    def test_on_delivery_hook(self, sim, mk_packet):
        seen = []
        sink = DeliverySink(sim, on_delivery=seen.append)
        sink.deliver(mk_packet())
        assert len(seen) == 1
