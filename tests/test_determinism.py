"""Determinism regression tests.

The reproduction's headline guarantee: a fixed root seed makes every
run bit-reproducible -- per policy, with or without fault injection --
and the fault subsystem draws from its own named RNG stream so
installing a schedule can never perturb traffic, jitter, or policy
draws.
"""

import dataclasses

from repro import (
    FaultInjector,
    FaultSchedule,
    MpdpConfig,
    MultipathDataPlane,
    PathConfig,
    POLICY_NAMES,
    PoissonSource,
    RngRegistry,
    SHARED_CORE,
    Simulator,
)

import pytest


def run(policy, *, seed=33, schedule=None, dur=15_000.0, rate=200_000):
    n_paths = 1 if policy == "single" else 4
    sim = Simulator()
    rngs = RngRegistry(seed=seed)
    cfg = MpdpConfig(n_paths=n_paths, policy=policy,
                     path=PathConfig(jitter=SHARED_CORE), warmup=2_000.0)
    host = MultipathDataPlane(sim, cfg, rngs)
    injector = None
    if schedule is not None and not schedule.empty:
        injector = FaultInjector(sim, host, schedule,
                                 rng=rngs.stream("faults"))
        injector.install(horizon=dur + 8_000.0)
    src = PoissonSource(sim, host.factory, host.input, rngs.stream("traffic"),
                        rate_pps=rate, n_flows=64, duration=dur)
    src.start()
    sim.run(until=dur + 8_000.0)
    host.finalize()
    return host, injector, src.stats.packets


def fingerprint(host):
    """Everything observable about one run, as comparable values."""
    return (
        dataclasses.astuple(host.sink.recorder.summary()),
        host.stats(),
        [p.completed for p in host.paths],
        [p.last_completion for p in host.paths],
    )


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_same_seed_same_run(policy):
    a = fingerprint(run(policy)[0])
    b = fingerprint(run(policy)[0])
    assert a == b


def _crash_schedule():
    return (FaultSchedule()
            .crash(0, at=5_000.0, duration=4_000.0)
            .drop_burst(at=9_000.0, duration=1_000.0, prob=0.5))


def _stochastic_schedule():
    return (FaultSchedule()
            .renewal("crash", path=0, mtbf=6_000.0, mttr=1_000.0)
            .renewal("hang", path=1, mtbf=8_000.0, mttr=500.0))


@pytest.mark.parametrize("make_sched", [_crash_schedule, _stochastic_schedule],
                         ids=["deterministic", "stochastic"])
@pytest.mark.parametrize("policy", ["hash", "adaptive", "redundant2"])
def test_faulted_runs_reproduce(policy, make_sched):
    host_a, inj_a, _ = run(policy, schedule=make_sched())
    host_b, inj_b, _ = run(policy, schedule=make_sched())
    assert inj_a.timeline == inj_b.timeline
    assert len(inj_a.timeline) > 0
    assert fingerprint(host_a) == fingerprint(host_b)
    # repr-compare: availability summaries may contain nan (nan != nan).
    assert repr(inj_a.tracker.summary()) == repr(inj_b.tracker.summary())


def test_fault_stream_does_not_perturb_traffic():
    """Installing a fault schedule must not shift any other stream.

    The traffic source draws from its own stream, so the offered packet
    count and arrival process are identical with and without faults --
    the only differences are downstream consequences of the faults.
    """
    _, _, offered_clean = run("adaptive")
    _, _, offered_faulted = run("adaptive", schedule=_stochastic_schedule())
    assert offered_clean == offered_faulted


def test_fault_stream_is_isolated_in_registry():
    """Interleaving a "faults" stream leaves existing streams untouched."""
    a = RngRegistry(seed=5)
    t1 = a.stream("traffic").random(8).tolist()

    b = RngRegistry(seed=5)
    b.stream("faults").random(1000)  # consume heavily first
    t2 = b.stream("traffic").random(8).tolist()
    assert t1 == t2


def test_different_seeds_differ():
    a = fingerprint(run("adaptive", seed=1)[0])
    b = fingerprint(run("adaptive", seed=2)[0])
    assert a != b
