"""Tests for traffic sources."""

import numpy as np
import pytest

from repro.net import (
    CBRSource,
    FlowSource,
    FlowTracker,
    IncastSource,
    OnOffSource,
    PacketFactory,
    PoissonSource,
    TraceReplaySource,
    WEBSEARCH_CDF,
)
from repro.units import US_PER_S


class TestCBR:
    def test_exact_rate_and_spacing(self, sim, factory, rng):
        got = []
        src = CBRSource(sim, factory, got.append, rng, rate_pps=1e6, duration=100.0)
        src.start()
        sim.run(200.0)
        # 1 pps/µs for 100 µs -> 100 packets (first at t=0)
        assert len(got) == 100
        times = [p.t_created for p in got]
        diffs = np.diff(times)
        assert np.allclose(diffs, 1.0)

    def test_stats_track_emissions(self, sim, factory, rng):
        src = CBRSource(sim, factory, lambda p: None, rng, rate_pps=1e6, size=100, duration=50.0)
        src.start()
        sim.run(100.0)
        assert src.stats.packets == 50
        assert src.stats.bytes == 5000


class TestPoisson:
    def test_mean_rate_close_to_nominal(self, sim, factory, rng):
        got = []
        src = PoissonSource(sim, factory, got.append, rng, rate_pps=1e6, duration=20_000.0)
        src.start()
        sim.run(30_000.0)
        rate = len(got) / 20_000.0  # packets per µs
        assert abs(rate - 1.0) < 0.05

    def test_interarrivals_exponential(self, sim, factory, rng):
        got = []
        src = PoissonSource(sim, factory, got.append, rng, rate_pps=1e6, duration=50_000.0)
        src.start()
        sim.run(60_000.0)
        iats = np.diff([p.t_created for p in got])
        # Exponential: std ~= mean, CV ~= 1.
        cv = iats.std() / iats.mean()
        assert 0.9 < cv < 1.1

    def test_size_sampler_used(self, sim, factory, rng):
        got = []
        sampler = lambda r, n: r.integers(100, 200, n)
        src = PoissonSource(
            sim, factory, got.append, rng, rate_pps=1e6, size_sampler=sampler, duration=5000.0
        )
        src.start()
        sim.run(6000.0)
        sizes = {p.size for p in got}
        assert all(100 <= s < 200 for s in sizes)
        assert len(sizes) > 10

    def test_pseudo_flow_structure(self, sim, factory, rng):
        got = []
        src = PoissonSource(
            sim, factory, got.append, rng, rate_pps=1e6, duration=5000.0, n_flows=8
        )
        src.start()
        sim.run(6000.0)
        flows = {p.flow_id for p in got}
        assert flows <= set(range(8))
        assert len(flows) == 8
        # Per-flow seqs are contiguous from 0.
        for fid in flows:
            seqs = sorted(p.seq for p in got if p.flow_id == fid)
            assert seqs == list(range(len(seqs)))

    def test_zipf_skews_flow_popularity(self, sim, factory, rng):
        got = []
        src = PoissonSource(
            sim, factory, got.append, rng, rate_pps=1e6, duration=20_000.0,
            n_flows=16, zipf_s=1.5,
        )
        src.start()
        sim.run(30_000.0)
        counts = np.bincount([p.flow_id for p in got], minlength=16)
        assert counts[0] > 3 * counts[8]  # rank-0 flow much hotter


class TestOnOff:
    def test_mean_rate_formula(self, sim, factory, rng):
        src = OnOffSource(
            sim, factory, lambda p: None, rng,
            peak_rate_pps=2e6, mean_on=100.0, mean_off=100.0,
        )
        assert src.mean_rate_pps == pytest.approx(1e6)

    def test_bursty_structure(self, sim, factory, rng):
        got = []
        src = OnOffSource(
            sim, factory, got.append, rng,
            peak_rate_pps=2e6, mean_on=50.0, mean_off=500.0, duration=50_000.0,
        )
        src.start()
        sim.run(60_000.0)
        iats = np.diff([p.t_created for p in got])
        # Bursty: CV of inter-arrivals well above Poisson's 1.
        cv = iats.std() / iats.mean()
        assert cv > 1.5

    def test_invalid_params(self, sim, factory, rng):
        with pytest.raises(ValueError):
            OnOffSource(sim, factory, lambda p: None, rng,
                        peak_rate_pps=1e6, mean_on=0.0, mean_off=10.0)


class TestIncast:
    def test_epoch_bursts(self, sim, factory, rng):
        got = []
        src = IncastSource(
            sim, factory, got.append, rng,
            fan_in=4, burst_pkts=3, epoch=1000.0, duration=5000.0, jitter=1.0,
        )
        src.start()
        sim.run(7000.0)
        # 5 epochs x 4 workers x 3 packets
        assert len(got) == 5 * 4 * 3
        # Packets cluster at epoch starts.
        times = np.array([p.t_created for p in got])
        assert np.all((times % 1000.0) < 20.0)


class TestFlowSource:
    def test_flows_registered_and_sized(self, sim, factory, rng):
        tracker = FlowTracker()
        got = []
        src = FlowSource(
            sim, factory, got.append, rng,
            flow_rate_fps=10_000.0, size_cdf=WEBSEARCH_CDF,
            tracker=tracker, duration=20_000.0,
        )
        src.start()
        sim.run(100_000.0)
        assert src.stats.flows > 50
        assert len(tracker.flows) == src.stats.flows
        # Every emitted packet belongs to a registered flow.
        assert all(p.flow_id in tracker.flows for p in got)

    def test_packets_paced_not_simultaneous(self, sim, factory, rng):
        got = []
        src = FlowSource(
            sim, factory, got.append, rng,
            flow_rate_fps=100.0, size_cdf=WEBSEARCH_CDF, pacing_bps=10e9,
            duration=10_000.0,
        )
        src.start()
        sim.run(200_000.0)
        by_flow = {}
        for p in got:
            by_flow.setdefault(p.flow_id, []).append(p.t_created)
        multi = [ts for ts in by_flow.values() if len(ts) > 3]
        assert multi, "expected some multi-packet flows"
        for ts in multi:
            gaps = np.diff(sorted(ts))
            # 1554B at 10 Gbps = 1.24 µs serialization spacing.
            assert gaps.min() > 1.0

    def test_giant_flows_truncated(self, sim, factory, rng):
        from repro.net.workloads import EmpiricalCDF

        huge = EmpiricalCDF([(10**9, 0.5), (2 * 10**9, 1.0)])
        tracker = FlowTracker()
        src = FlowSource(
            sim, factory, lambda p: None, rng,
            flow_rate_fps=1000.0, size_cdf=huge, tracker=tracker,
            max_flow_pkts=100, duration=2000.0,
        )
        src.start()
        sim.run(5000.0)
        assert all(f.n_packets <= 100 for f in tracker.flows.values())


class TestTraceReplay:
    def test_replays_exact_schedule(self, sim, factory, rng):
        got = []
        src = TraceReplaySource(
            sim, factory, got.append, rng,
            times=[0.0, 5.0, 5.0, 12.0], sizes=[100, 200, 300, 400],
        )
        src.start()
        sim.run()
        assert [p.t_created for p in got] == [0.0, 5.0, 5.0, 12.0]
        assert [p.size for p in got] == [100, 200, 300, 400]

    def test_validation(self, sim, factory, rng):
        with pytest.raises(ValueError):
            TraceReplaySource(sim, factory, lambda p: None, rng, times=[1, 0], sizes=[1, 1])
        with pytest.raises(ValueError):
            TraceReplaySource(sim, factory, lambda p: None, rng, times=[0], sizes=[1, 2])
