"""Tests for the poller batch-service loop, FlowCache, and DataPath."""

import math

import pytest

from repro.dataplane import FlowCache, PathQueue, Poller, VCpu
from repro.dataplane.path import DataPath, PathConfig
from repro.dataplane.vcpu import JitterParams
from repro.elements import Chain, Delay
from repro.elements.nf import AclFirewall, AclRule
from repro.net.packet import FiveTuple


def mk_poller(sim, chain=None, **kw):
    q = PathQueue(sim)
    cpu = VCpu()
    got = []
    dropped = []
    poller = Poller(
        sim, q, cpu, chain or Chain([Delay("d", base_cost=1.0)]),
        got.append, drop_sink=dropped.append, **kw,
    )
    return q, cpu, poller, got, dropped


class TestPoller:
    def test_serves_single_packet(self, sim, mk_packet):
        q, cpu, poller, got, _ = mk_poller(sim, batch_overhead=0.0)
        p = mk_packet()
        q.push(p)
        sim.run()
        assert got == [p]
        assert p.t_deq == 0.0
        assert poller.served == 1

    def test_batch_amortizes_single_wakeup(self, sim, mk_packet):
        q, cpu, poller, got, _ = mk_poller(sim, batch_size=8, batch_overhead=0.5)
        for i in range(8):
            q.push(mk_packet(seq=i))
        sim.run()
        assert poller.batches == 1
        assert len(got) == 8
        # One overhead charge + 8 x 1.0 service
        assert cpu.busy_time == pytest.approx(8.5)

    def test_completions_spaced_by_service_time(self, sim, mk_packet):
        times = []
        q = PathQueue(sim)
        poller = Poller(
            sim, q, VCpu(), Chain([Delay("d", base_cost=2.0)]),
            lambda p: times.append(sim.now), batch_overhead=0.0,
        )
        for i in range(3):
            q.push(mk_packet(seq=i))
        sim.run()
        assert times == [2.0, 4.0, 6.0]

    def test_queue_larger_than_batch_loops(self, sim, mk_packet):
        q, cpu, poller, got, _ = mk_poller(sim, batch_size=4)
        for i in range(10):
            q.push(mk_packet(seq=i))
        sim.run()
        assert len(got) == 10
        assert poller.batches == 3

    def test_wakeup_latency_applied(self, sim, mk_packet):
        times = []
        q = PathQueue(sim)
        Poller(
            sim, q, VCpu(), Chain([Delay("d", base_cost=1.0)]),
            lambda p: times.append(sim.now), batch_overhead=0.0, wakeup_latency=5.0,
        )
        q.push(mk_packet())
        sim.run()
        assert times == [6.0]

    def test_dropped_packets_to_drop_sink(self, sim, factory):
        chain = Chain([AclFirewall(rules=[AclRule(action="deny")])])
        q, cpu, poller, got, dropped = mk_poller(sim, chain=chain)
        q.push(factory.make(FiveTuple(1, 2, 3, 4), 100, 0.0))
        sim.run()
        assert got == [] and len(dropped) == 1

    def test_drop_still_charges_cpu(self, sim, factory):
        chain = Chain([AclFirewall(rules=[AclRule(action="deny")], base_cost=1.0)])
        q, cpu, poller, _, _ = mk_poller(sim, chain=chain, batch_overhead=0.0)
        q.push(factory.make(FiveTuple(1, 2, 3, 4), 100, 0.0))
        sim.run()
        assert cpu.busy_time > 0

    def test_same_time_burst_served_as_one_batch(self, sim, mk_packet):
        q, cpu, poller, got, _ = mk_poller(sim, batch_size=32)
        for i in range(6):
            sim.call_at(10.0, q.push, mk_packet(seq=i))
        sim.run()
        assert poller.batches == 1

    def test_invalid_params(self, sim):
        q = PathQueue(sim)
        with pytest.raises(ValueError):
            Poller(sim, q, VCpu(), Chain([]), lambda p: None, batch_size=0)
        q2 = PathQueue(sim)
        with pytest.raises(ValueError):
            Poller(sim, q2, VCpu(), Chain([]), lambda p: None, batch_overhead=-1)


class TestFlowCache:
    def test_cold_miss_then_hits(self, factory):
        fc = FlowCache()
        ft = FiveTuple(1, 2, 3, 4)
        c1 = fc.process(factory.make(ft, 100, 0.0), 0.0)
        c2 = fc.process(factory.make(ft, 100, 1.0), 1.0)
        assert c1 == fc.upcall_cost
        assert c2 == fc.hit_cost
        assert fc.upcalls == 1 and fc.hits == 1

    def test_emc_eviction_causes_megaflow_miss(self, factory):
        fc = FlowCache(emc_size=2)
        fts = [FiveTuple(1, 2, i, 80) for i in range(3)]
        for ft in fts:
            fc.process(factory.make(ft, 100, 0.0), 0.0)  # 3 upcalls, evicts ft0
        c = fc.process(factory.make(fts[0], 100, 1.0), 1.0)
        assert c == fc.miss_cost
        assert fc.misses == 1

    def test_hit_rate(self, factory):
        fc = FlowCache()
        ft = FiveTuple(1, 2, 3, 4)
        for i in range(10):
            fc.process(factory.make(ft, 100, float(i)), float(i))
        assert fc.hit_rate == pytest.approx(0.9)

    def test_clone_fresh_state(self, factory):
        fc = FlowCache()
        fc.process(factory.make(FiveTuple(1, 2, 3, 4), 100, 0.0), 0.0)
        cp = fc.clone("@1")
        assert cp.hits == cp.misses == cp.upcalls == 0


class TestDataPath:
    def test_end_to_end_completion(self, sim, mk_packet, rng):
        done = []
        dp = DataPath(sim, 0, Chain([Delay("d", base_cost=1.0)]), done.append, rng=rng)
        p = mk_packet()
        assert dp.enqueue(p)
        sim.run()
        assert done == [p]
        assert p.path_id == 0
        assert dp.completed == 1

    def test_flowcache_prepended(self, sim, rng):
        dp = DataPath(sim, 3, Chain([Delay("d")]), lambda p: None, rng=rng)
        assert dp.chain.elements[0] is dp.flowcache
        assert len(dp.chain) == 2

    def test_latency_stats_updated(self, sim, mk_packet, rng):
        dp = DataPath(sim, 0, Chain([Delay("d", base_cost=2.0)]), lambda p: None, rng=rng)
        dp.enqueue(mk_packet())
        sim.run()
        assert not math.isnan(dp.ewma_latency.value)
        assert dp.ewma_latency.value > 0

    def test_expected_wait_grows_with_backlog(self, sim, mk_packet, rng):
        dp = DataPath(
            sim, 0, Chain([Delay("d", base_cost=5.0)]), lambda p: None, rng=rng,
            config=PathConfig(batch_size=1),
        )
        w0 = dp.expected_wait(0.0)
        for i in range(10):
            dp.enqueue(mk_packet(seq=i))
        assert dp.expected_wait(0.0) > w0
        sim.run()

    def test_drop_callback_from_queue_not_invoked(self, sim, mk_packet, rng):
        # Queue overflow drops are reported to the *caller* of enqueue,
        # not via the path's drop callback (which is for chain drops).
        drops = []
        dp = DataPath(
            sim, 0, Chain([Delay("d")]), lambda p: None, drop=drops.append,
            rng=rng, config=PathConfig(queue_capacity=1, batch_size=1),
        )
        dp.enqueue(mk_packet())
        ok = dp.enqueue(mk_packet())
        sim.run()
        assert drops == []

    def test_stalled_signal(self, sim, mk_packet, rng):
        dp = DataPath(sim, 0, Chain([Delay("d")]), lambda p: None, rng=rng)
        # Queue a packet but never run the sim: head waits forever.
        dp.queue._q.append(mk_packet())  # bypass poller wakeup
        dp.queue._q[0].t_enq = 0.0
        assert dp.stalled(1000.0, threshold=500.0)
        assert not dp.stalled(100.0, threshold=500.0)
