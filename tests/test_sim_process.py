"""Tests for generator processes and interrupts (repro.sim.process)."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


class TestBasics:
    def test_process_runs_and_returns(self, sim):
        def proc(sim):
            yield sim.timeout(5.0)
            return "result"

        p = sim.process(proc(sim))
        assert sim.run(until=p) == "result"
        assert sim.now == 5.0
        assert not p.is_alive

    def test_yield_value_is_event_value(self, sim):
        def proc(sim, out):
            v = yield sim.timeout(1.0, value="payload")
            out.append(v)

        out = []
        sim.process(proc(sim, out))
        sim.run()
        assert out == ["payload"]

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_yield_non_event_raises(self, sim):
        def proc(sim):
            yield 42

        sim.process(proc(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_processes_start_in_spawn_order(self, sim):
        seen = []

        def proc(sim, tag):
            seen.append(tag)
            yield sim.timeout(0.0)

        sim.process(proc(sim, "a"))
        sim.process(proc(sim, "b"))
        sim.run()
        assert seen == ["a", "b"]

    def test_wait_on_other_process(self, sim):
        def child(sim):
            yield sim.timeout(4.0)
            return "child-value"

        def parent(sim, out):
            v = yield sim.process(child(sim))
            out.append((sim.now, v))

        out = []
        sim.process(parent(sim, out))
        sim.run()
        assert out == [(4.0, "child-value")]

    def test_wait_on_already_finished_process(self, sim):
        def child(sim):
            yield sim.timeout(1.0)
            return 7

        def parent(sim, child_proc, out):
            yield sim.timeout(10.0)
            v = yield child_proc
            out.append(v)

        out = []
        c = sim.process(child(sim))
        sim.process(parent(sim, c, out))
        sim.run()
        assert out == [7]

    def test_exception_in_process_propagates(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            raise KeyError("inner")

        sim.process(proc(sim))
        with pytest.raises(KeyError):
            sim.run()

    def test_exception_catchable_by_waiter(self, sim):
        def bad(sim):
            yield sim.timeout(1.0)
            raise ValueError("bad")

        def waiter(sim, out):
            try:
                yield sim.process(bad(sim))
            except ValueError as e:
                out.append(str(e))

        out = []
        sim.process(waiter(sim, out))
        sim.run()
        assert out == ["bad"]

    def test_failed_event_raises_at_yield(self, sim):
        def proc(sim, ev, out):
            try:
                yield ev
            except RuntimeError as e:
                out.append(str(e))

        ev = sim.event()
        out = []
        sim.process(proc(sim, ev, out))
        sim.call_at(2.0, ev.fail, RuntimeError("event failed"))
        sim.run()
        assert out == ["event failed"]


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        out = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as i:
                out.append((sim.now, i.cause))

        def killer(sim, target):
            yield sim.timeout(5.0)
            target.interrupt("preempted")

        p = sim.process(sleeper(sim))
        sim.process(killer(sim, p))
        sim.run()
        assert out == [(5.0, "preempted")]

    def test_unhandled_interrupt_fails_process(self, sim):
        def sleeper(sim):
            yield sim.timeout(100.0)

        def killer(sim, target):
            yield sim.timeout(1.0)
            target.interrupt("zap")

        p = sim.process(sleeper(sim))
        sim.process(killer(sim, p))
        with pytest.raises(Interrupt):
            sim.run()

    def test_interrupt_dead_process_rejected(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)

        p = sim.process(proc(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_wait_resumes_with_new_timeout(self, sim):
        out = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
                out.append("full-sleep")
            except Interrupt:
                yield sim.timeout(3.0)
                out.append(("resumed", sim.now))

        def killer(sim, target):
            yield sim.timeout(5.0)
            target.interrupt()

        p = sim.process(sleeper(sim))
        sim.process(killer(sim, p))
        sim.run()
        assert out == [("resumed", 8.0)]

    def test_self_interrupt_rejected(self, sim):
        def proc(sim, ref):
            with pytest.raises(SimulationError):
                ref[0].interrupt()
            yield sim.timeout(1.0)

        ref = []
        p = sim.process(proc(sim, ref))
        ref.append(p)
        sim.run()
